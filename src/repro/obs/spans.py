"""Causal span reconstruction: protocol transactions from the trace.

The trace stream (:mod:`repro.sim.trace`) records *events*; this module
folds them into *transactions* — parent/child span trees with explicit
start/end times — so a handover can be read as a timeline instead of a
grep.  Reconstructed transaction kinds:

=================  ====================================================
kind               transaction
=================  ====================================================
``handover``       one mobile-node move: ``detached``/``blackout`` to
                   first multicast delivery at the new location, with
                   the contiguous pipeline phases below as children
``phase``          ``l2-handoff`` → ``movement-detection`` →
                   ``coa-configuration`` → ``rejoin``; each starts
                   exactly where the previous one ends, so their
                   durations sum to the end-to-end join delay whenever
                   delivery arrives in the ``rejoin`` phase (the §4.3
                   receiver experiments)
``binding-update`` BU sent → BAck received (retransmits counted);
                   a child of the open handover, or a root span for
                   periodic lifetime refreshes
``mld-report``     an unsolicited/solicited Report sent mid-handover
                   (instant marker span)
``graft``          Graft sent → GraftAck received per
                   (router, S, G); retries counted
``assert``         assert election per (router, iface, S, G):
                   first Assert sent → lost / winner observed / expired
``prune-override`` prune-pending window per (router, iface, S, G):
                   closes as ``overridden`` (downstream Join) or
                   ``pruned`` (timer fired)
``leave-window``   departure to ``members-gone`` on the old link per
                   group — the §4.3 leave delay, span-shaped
=================  ====================================================

Spans are correlated purely by node, link, interface and (S,G) strings
already present in event details — no new event fields, so golden
trace digests are untouched.  The same :class:`SpanBuilder` consumes a
live event stream (via :class:`SpanRecorder`, a ``Tracer`` listener)
or an offline :class:`~repro.obs.export.TraceArchive`
(:func:`build_spans`); because open spans are finalized at the *last
event time* rather than the simulator clock, the live and replayed
trees are byte-identical (:func:`spans_to_json`).

Span durations feed ``repro_span_duration_seconds{kind,phase,approach}``
histograms when a :class:`~repro.obs.registry.MetricsRegistry` is
supplied, and :func:`chrome_trace` renders the trees as Chrome
trace-event JSON loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "ENV_FLAG",
    "HANDOVER_PHASES",
    "SPAN_CATEGORIES",
    "Span",
    "SpanBuilder",
    "SpanRecorder",
    "build_spans",
    "chrome_trace",
    "find_span",
    "iter_spans",
    "spans_enabled",
    "spans_to_json",
    "write_chrome_trace",
]

#: Environment flag mirroring ``REPRO_CHECK_INVARIANTS``: when set,
#: every :class:`~repro.core.scenario.PaperScenario` self-attaches a
#: :class:`SpanRecorder` — campaign worker processes inherit it, so
#: cells grown under ``repro spans`` are span-instrumented too.
ENV_FLAG = "REPRO_TRACE_SPANS"

#: Trace categories the builder consumes.  High-volume categories
#: (``mcast.forward``, ``link``) are deliberately excluded: span
#: reconstruction needs control-plane events plus per-receiver
#: deliveries only.
SPAN_CATEGORIES = frozenset(
    ("mobility", "mipv6", "mld", "pim", "pim.state", "mcast.deliver")
)

#: The contiguous handover pipeline, in order.  Each phase starts at
#: the event that ends the previous one.
HANDOVER_PHASES = (
    "l2-handoff",
    "movement-detection",
    "coa-configuration",
    "rejoin",
)


def spans_enabled() -> bool:
    """True when runs should self-attach a :class:`SpanRecorder`."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in ("", "0", "false")


@dataclass
class Span:
    """One reconstructed transaction (or phase of one).

    ``span_id`` is deterministic — ``{kind}:{node}:{ordinal}`` in event
    order — so ids agree between a live run and an offline replay of
    its export.
    """

    span_id: str
    kind: str
    name: str
    node: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested representation (children recursed)."""
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "open" if self.end is None else f"{self.end - self.start:.6f}s"
        return f"<Span {self.span_id} {self.name} @{self.start:.3f} {dur}>"


class _Handover:
    """Builder-internal state for one open handover transaction."""

    __slots__ = ("span", "phase", "first_delivery", "updates")

    def __init__(self, span: Span) -> None:
        self.span = span
        self.phase: Optional[Span] = None  # the currently open phase
        self.first_delivery: Optional[float] = None
        self.updates: List[Span] = []  # open binding-update children


class SpanBuilder:
    """Folds a time-ordered event stream into span trees.

    Feed events with :meth:`feed` (only :data:`SPAN_CATEGORIES` are
    inspected; others are ignored), then call :meth:`finish` to close
    anything still open at the last seen event time.  ``on_close``
    fires once per span as it closes (metrics hook).
    """

    def __init__(self, on_close: Optional[Callable[[Span], None]] = None) -> None:
        self.on_close = on_close
        self.roots: List[Span] = []
        self._ids: Dict[Tuple[str, str], int] = {}
        self._handovers: Dict[str, _Handover] = {}
        self._grafts: Dict[Tuple[str, str, str], Span] = {}
        self._asserts: Dict[Tuple[str, str, str, str], Span] = {}
        self._overrides: Dict[Tuple[str, str, str, str], Span] = {}
        self._updates: Dict[str, Span] = {}
        self._leaves: Dict[Tuple[str, str], List[Span]] = {}
        self._groups: Dict[str, set] = {}
        self._last_delivery: Dict[str, float] = {}
        self._last_time = 0.0
        self._open_count = 0
        self._finished = False

    # ------------------------------------------------------------------
    # span lifecycle plumbing
    # ------------------------------------------------------------------
    def _open(
        self,
        kind: str,
        name: str,
        node: str,
        start: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        ordinal = self._ids[(kind, node)] = self._ids.get((kind, node), 0) + 1
        span = Span(
            span_id=f"{kind}:{node}:{ordinal}",
            kind=kind,
            name=name,
            node=node,
            start=start,
            attrs=attrs,
        )
        if parent is not None:
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._open_count += 1
        return span

    def _close(self, span: Span, end: float, **attrs: Any) -> None:
        if span.end is not None:
            return
        span.attrs.update(attrs)
        span.end = max(end, span.start)
        self._open_count -= 1
        if self.on_close is not None:
            self.on_close(span)

    @property
    def open_count(self) -> int:
        """Spans opened but not yet closed (0 after :meth:`finish`)."""
        return self._open_count

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def feed(self, ev: Any) -> None:
        """Consume one :class:`~repro.sim.trace.TraceEvent`."""
        category = ev.category
        if category not in SPAN_CATEGORIES:
            return
        self._last_time = ev.time
        detail = ev.detail
        if category == "mcast.deliver":
            self._on_delivery(ev.node, ev.time)
            return
        event = detail.get("event")
        if event is None:
            return
        handler = self._HANDLERS.get(event)
        if handler is not None:
            handler(self, ev.node, ev.time, detail)

    def finish(self, at: Optional[float] = None) -> List[Span]:
        """Close every open span and return the root spans.

        ``at`` defaults to the time of the last event fed — *not* a
        wall/simulator clock — so a live builder and an offline replay
        of the same stream close identically (the byte-identity
        contract of :func:`spans_to_json`).  Idempotent.
        """
        if self._finished:
            return self.roots
        self._finished = True
        end = self._last_time if at is None else at
        for node in sorted(self._handovers):
            self._close_handover(self._handovers[node], end, closed_by="finish")
        self._handovers.clear()
        for table in (self._grafts, self._asserts, self._overrides, self._updates):
            for span in table.values():
                self._close(span, end, closed_by="finish")
            table.clear()
        for spans in self._leaves.values():
            for span in spans:
                self._close(span, end, closed_by="finish", left=False)
        self._leaves.clear()
        return self.roots

    # ------------------------------------------------------------------
    # handover pipeline
    # ------------------------------------------------------------------
    def _begin_handover(
        self, node: str, time: float, from_link: Optional[str],
        to_link: Optional[str], blackout: Optional[float] = None,
    ) -> None:
        stale = self._handovers.pop(node, None)
        if stale is not None:
            # A new move while the previous handover was still open
            # supersedes it (matches ``_move_seq`` in the mobile node).
            self._close_handover(stale, time, closed_by="superseded")
        name = f"handover:{to_link}" if blackout is None else f"blackout:{to_link}"
        attrs: Dict[str, Any] = {"from_link": from_link, "to_link": to_link}
        if blackout is not None:
            attrs["blackout"] = blackout
        last = self._last_delivery.get(node)
        if last is not None:
            attrs["last_delivery_before"] = last
        span = self._open("handover", name, node, time, **attrs)
        handover = _Handover(span)
        handover.phase = self._open(
            "phase", HANDOVER_PHASES[0], node, time, parent=span
        )
        self._handovers[node] = handover
        if from_link:
            for group in sorted(self._groups.get(node, ())):
                leave = self._open(
                    "leave-window",
                    f"leave:{group}",
                    node,
                    time,
                    link=from_link,
                    group=group,
                    handover=span.span_id,
                )
                self._leaves.setdefault((from_link, group), []).append(leave)

    def _advance_phase(
        self, node: str, time: float, ending: str, next_phase: Optional[str],
        **attrs: Any,
    ) -> None:
        handover = self._handovers.get(node)
        if handover is None:
            return
        phase = handover.phase
        if phase is None or phase.name != ending:
            return  # out-of-pipeline event (e.g. duplicate) — ignore
        self._close(phase, time, **attrs)
        handover.phase = (
            self._open("phase", next_phase, node, time, parent=handover.span)
            if next_phase is not None
            else None
        )
        if (
            handover.phase is not None
            and handover.phase.name == HANDOVER_PHASES[-1]
            and handover.first_delivery is not None
        ):
            # Delivery already arrived mid-pipeline (an on-tree move or
            # return-home): the rejoin phase is trivially done.
            self._close(handover.phase, time)
            handover.phase = None
        if handover.phase is None:
            self._maybe_complete(handover, time)

    def _on_delivery(self, node: str, time: float) -> None:
        self._last_delivery[node] = time
        handover = self._handovers.get(node)
        if handover is None or handover.first_delivery is not None:
            return
        handover.first_delivery = time
        span = handover.span
        span.attrs["first_delivery"] = time
        phase = handover.phase
        span.attrs["delivered_in"] = phase.name if phase is not None else "pre-attach"
        if phase is not None and phase.name == HANDOVER_PHASES[-1]:
            # Normal §4.3 shape: delivery ends the rejoin phase, so the
            # four phase durations sum exactly to the join delay.
            self._close(phase, time)
            handover.phase = None
        self._maybe_complete(handover, time)

    def _maybe_complete(self, handover: _Handover, time: float) -> None:
        """Close the handover root once the pipeline is done: first
        delivery seen, no phase open, and no binding-update child still
        awaiting its BAck (a child may not outlive its parent)."""
        if handover.first_delivery is None or handover.phase is not None:
            return
        if any(span.end is None for span in handover.updates):
            return
        ends = [c.end for c in handover.span.children if c.end is not None]
        self._close(handover.span, max([time] + ends), joined=True)
        self._handovers.pop(handover.span.node, None)

    def _close_handover(self, handover: _Handover, time: float, **attrs: Any) -> None:
        for child in handover.span.children:
            if child.end is None:
                self._close(child, time, closed_by=attrs.get("closed_by"))
        handover.phase = None
        if handover.first_delivery is None:
            attrs.setdefault("joined", False)
        self._close(handover.span, time, **attrs)

    # ------------------------------------------------------------------
    # per-event handlers (dispatched from feed)
    # ------------------------------------------------------------------
    def _ev_detached(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._begin_handover(node, time, d.get("from_link"), d.get("to_link"))

    def _ev_blackout(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._begin_handover(
            node, time, d.get("link"), d.get("link"), blackout=d.get("duration")
        )

    def _ev_attached(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._advance_phase(
            node, time, HANDOVER_PHASES[0], HANDOVER_PHASES[1], link=d.get("link")
        )

    def _ev_movement_detected(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._advance_phase(node, time, HANDOVER_PHASES[1], HANDOVER_PHASES[2])

    def _ev_coa_configured(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._advance_phase(
            node, time, HANDOVER_PHASES[2], HANDOVER_PHASES[3], coa=d.get("coa")
        )

    def _ev_returned_home(self, node: str, time: float, d: Dict[str, Any]) -> None:
        # Return-home skips CoA configuration: the phase closes with
        # zero duration, keeping the pipeline contiguous.
        self._advance_phase(
            node, time, HANDOVER_PHASES[2], HANDOVER_PHASES[3], returned_home=True
        )

    def _ev_app_join(self, node: str, time: float, d: Dict[str, Any]) -> None:
        group = d.get("group")
        if group:
            self._groups.setdefault(node, set()).add(group)

    def _ev_app_leave(self, node: str, time: float, d: Dict[str, Any]) -> None:
        group = d.get("group")
        if group:
            self._groups.get(node, set()).discard(group)

    def _ev_send_lost(self, node: str, time: float, d: Dict[str, Any]) -> None:
        handover = self._handovers.get(node)
        if handover is not None:
            attrs = handover.span.attrs
            attrs["sends_lost"] = attrs.get("sends_lost", 0) + 1

    def _ev_erroneous_source(self, node: str, time: float, d: Dict[str, Any]) -> None:
        handover = self._handovers.get(node)
        if handover is not None:
            attrs = handover.span.attrs
            attrs["erroneous_sends"] = attrs.get("erroneous_sends", 0) + 1

    # -- binding updates ------------------------------------------------
    def _open_update(self, node: str) -> Optional[Span]:
        span = self._updates.get(node)
        return span if span is not None and span.end is None else None

    def _ev_bu_sent(self, node: str, time: float, d: Dict[str, Any]) -> None:
        span = self._open_update(node)
        if span is not None:
            span.attrs["sends"] = span.attrs.get("sends", 1) + 1
            return
        handover = self._handovers.get(node)
        parent = handover.span if handover is not None else None
        span = self._open(
            "binding-update",
            "binding-update",
            node,
            time,
            parent=parent,
            seq=d.get("seq"),
            coa=d.get("coa"),
        )
        self._updates[node] = span
        if handover is not None:
            handover.updates.append(span)

    def _ev_bu_retransmit(self, node: str, time: float, d: Dict[str, Any]) -> None:
        span = self._open_update(node)
        if span is not None:
            span.attrs["retransmits"] = d.get("attempt", 0)

    def _ev_ba_received(self, node: str, time: float, d: Dict[str, Any]) -> None:
        span = self._open_update(node)
        if span is None:
            return
        self._close(span, time, status=d.get("status"), acked=True)
        del self._updates[node]
        handover = self._handovers.get(node)
        if handover is not None and span in handover.updates:
            self._maybe_complete(handover, time)

    # -- MLD ------------------------------------------------------------
    def _ev_report_sent(self, node: str, time: float, d: Dict[str, Any]) -> None:
        handover = self._handovers.get(node)
        if handover is None:
            return  # periodic query responses are not transactions
        span = self._open(
            "mld-report",
            f"report:{d.get('group')}",
            node,
            time,
            parent=handover.span,
            group=d.get("group"),
        )
        self._close(span, time)

    def _ev_members_gone(self, node: str, time: float, d: Dict[str, Any]) -> None:
        key = (d.get("link"), d.get("group"))
        spans = self._leaves.get(key)
        if not spans:
            return
        span = spans.pop(0)  # oldest departure expires first
        if not spans:
            self._leaves.pop(key, None)
        self._close(span, time, router=node, iface=d.get("iface"), left=True)

    # -- PIM graft ------------------------------------------------------
    def _ev_graft_sent(self, node: str, time: float, d: Dict[str, Any]) -> None:
        key = (node, d.get("source"), d.get("group"))
        span = self._grafts.get(key)
        if span is not None:
            span.attrs["sends"] = span.attrs.get("sends", 1) + 1
            return
        self._grafts[key] = self._open(
            "graft",
            f"graft:{d.get('group')}",
            node,
            time,
            source=d.get("source"),
            group=d.get("group"),
            target=d.get("target"),
        )

    def _ev_graft_acked(self, node: str, time: float, d: Dict[str, Any]) -> None:
        span = self._grafts.pop((node, d.get("source"), d.get("group")), None)
        if span is not None:
            self._close(span, time, acked=True)

    # -- PIM assert -----------------------------------------------------
    def _ev_assert_sent(self, node: str, time: float, d: Dict[str, Any]) -> None:
        key = (node, d.get("iface"), d.get("source"), d.get("group"))
        span = self._asserts.get(key)
        if span is not None:
            span.attrs["sends"] = span.attrs.get("sends", 1) + 1
            return
        self._asserts[key] = self._open(
            "assert",
            f"assert:{d.get('group')}",
            node,
            time,
            iface=d.get("iface"),
            source=d.get("source"),
            group=d.get("group"),
            metric=d.get("metric"),
        )

    def _end_assert(
        self, node: str, time: float, d: Dict[str, Any], outcome: str
    ) -> None:
        key = (node, d.get("iface"), d.get("source"), d.get("group"))
        span = self._asserts.pop(key, None)
        if span is None:
            if outcome != "lost":
                return
            # A router can lose an election it never spoke in (it heard
            # a better Assert first): record a zero-length span.
            span = self._open(
                "assert",
                f"assert:{d.get('group')}",
                node,
                time,
                iface=d.get("iface"),
                source=d.get("source"),
                group=d.get("group"),
            )
        attrs = {"outcome": outcome}
        if d.get("winner") is not None:
            attrs["winner"] = d.get("winner")
        self._close(span, time, **attrs)

    def _ev_assert_lost(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._end_assert(node, time, d, "lost")

    def _ev_assert_winner(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._end_assert(node, time, d, "observed-winner")

    def _ev_assert_expired(self, node: str, time: float, d: Dict[str, Any]) -> None:
        self._end_assert(node, time, d, "expired")

    # -- PIM prune/join-override ---------------------------------------
    def _ev_prune_pending(self, node: str, time: float, d: Dict[str, Any]) -> None:
        key = (node, d.get("iface"), d.get("source"), d.get("group"))
        if key in self._overrides:
            return
        self._overrides[key] = self._open(
            "prune-override",
            f"override-window:{d.get('group')}",
            node,
            time,
            iface=d.get("iface"),
            source=d.get("source"),
            group=d.get("group"),
        )

    def _ev_join_override(self, node: str, time: float, d: Dict[str, Any]) -> None:
        key = (node, d.get("iface"), d.get("source"), d.get("group"))
        span = self._overrides.pop(key, None)
        if span is not None:
            self._close(span, time, outcome="overridden")

    def _ev_oif_pruned(self, node: str, time: float, d: Dict[str, Any]) -> None:
        key = (node, d.get("iface"), d.get("source"), d.get("group"))
        span = self._overrides.pop(key, None)
        if span is not None:
            self._close(span, time, outcome="pruned")

    _HANDLERS: Dict[str, Callable[..., None]] = {
        "detached": _ev_detached,
        "blackout": _ev_blackout,
        "attached": _ev_attached,
        "movement-detected": _ev_movement_detected,
        "coa-configured": _ev_coa_configured,
        "returned-home": _ev_returned_home,
        "app-join": _ev_app_join,
        "app-leave": _ev_app_leave,
        "send-lost-detached": _ev_send_lost,
        "erroneous-source-send": _ev_erroneous_source,
        "bu-sent": _ev_bu_sent,
        "bu-retransmit": _ev_bu_retransmit,
        "ba-received": _ev_ba_received,
        "report-sent": _ev_report_sent,
        "members-gone": _ev_members_gone,
        "graft-sent": _ev_graft_sent,
        "graft-acked": _ev_graft_acked,
        "assert-sent": _ev_assert_sent,
        "assert-lost": _ev_assert_lost,
        "assert-winner-stored": _ev_assert_winner,
        "assert-expired": _ev_assert_expired,
        "prune-pending": _ev_prune_pending,
        "join-override-received": _ev_join_override,
        "oif-pruned": _ev_oif_pruned,
    }


class SpanRecorder:
    """Live span reconstruction as a :class:`~repro.sim.trace.Tracer`
    listener.

    :meth:`attach` subscribes the builder to :data:`SPAN_CATEGORIES`
    only, so the high-volume data-plane categories never reach it; when
    spans are disabled no recorder exists and ``Tracer.record`` runs
    its unmodified zero-listener path.  With a ``registry``, every
    closed span observes its duration into
    ``repro_span_duration_seconds{kind,phase,approach}``.
    """

    def __init__(self, registry: Any = None, approach: str = "") -> None:
        self.approach = approach
        self._histogram = None
        if registry is not None:
            self._histogram = registry.histogram(
                "repro_span_duration_seconds",
                "Duration of reconstructed protocol transactions",
                label_names=("kind", "phase", "approach"),
            )
        self.builder = SpanBuilder(
            on_close=self._observe if self._histogram is not None else None
        )

    def attach(self, tracer: Any) -> "SpanRecorder":
        tracer.add_listener(self.builder.feed, categories=SPAN_CATEGORIES)
        return self

    def _observe(self, span: Span) -> None:
        self._histogram.labels(
            kind=span.kind,
            phase=span.name if span.kind == "phase" else "",
            approach=self.approach,
        ).observe(span.end - span.start)

    def finish(self, at: Optional[float] = None) -> List[Span]:
        return self.builder.finish(at=at)

    @property
    def roots(self) -> List[Span]:
        return self.builder.roots


def build_spans(
    trace: Any, on_close: Optional[Callable[[Span], None]] = None
) -> List[Span]:
    """Offline replay: span trees from any object with ``.events``
    (a live ``Tracer`` or an imported
    :class:`~repro.obs.export.TraceArchive`)."""
    builder = SpanBuilder(on_close=on_close)
    for ev in trace.events:
        builder.feed(ev)
    return builder.finish()


# ----------------------------------------------------------------------
# tree utilities / serialization
# ----------------------------------------------------------------------
def iter_spans(roots: Iterable[Span]) -> Iterator[Span]:
    """Depth-first iteration over span trees."""
    stack = list(roots)[::-1]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


def find_span(roots: Iterable[Span], span_id: str) -> Optional[Span]:
    for span in iter_spans(roots):
        if span.span_id == span_id:
            return span
    return None


def spans_to_json(roots: Iterable[Span], indent: Optional[int] = None) -> str:
    """Canonical JSON for a span forest.

    Sorted keys and default separators, so two structurally identical
    forests serialize byte-identically — the live-vs-replay equality
    check of the test suite compares these strings directly.
    """
    return json.dumps(
        [span.to_dict() for span in roots], sort_keys=True, indent=indent
    )


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_trace(roots: Iterable[Span], meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Span forest as a Chrome trace-event document.

    One complete (``ph: "X"``) event per closed span, timestamps in
    microseconds, one "thread" per node — load the written file in
    ``chrome://tracing`` or https://ui.perfetto.dev to inspect a
    handover visually.  Open spans (none, after ``finish()``) are
    skipped.
    """
    roots = list(roots)
    nodes = sorted({span.node for span in iter_spans(roots)})
    tids = {node: tid for tid, node in enumerate(nodes, start=1)}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for node in nodes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[node],
                "args": {"name": node},
            }
        )
    for span in iter_spans(roots):
        if span.end is None:
            continue
        args = {"span_id": span.span_id, "kind": span.kind}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": 1,
                "tid": tids[span.node],
                "args": args,
            }
        )
    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta:
        doc["metadata"] = dict(meta)
    return doc


def write_chrome_trace(
    path: str, roots: Iterable[Span], meta: Optional[Dict[str, Any]] = None
) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns the number
    of trace events written (metadata records included)."""
    doc = chrome_trace(roots, meta=meta)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
