"""JSONL trace persistence and offline re-analysis.

A run's full measurement state — every trace event plus the stats
snapshots the §4.3 bandwidth split is computed from — is persisted as
one JSON document per line, so a simulation can be analyzed offline
(or by external tooling) without re-running it::

    python -m repro trace --export run.jsonl     # live run + export
    python -m repro trace --import run.jsonl     # same numbers, offline

Schema (``version`` 1), one object per line:

=========  ==========================================================
``type``   payload
=========  ==========================================================
header     ``{"type": "header", "version": 1, "meta": {...}}``
stats      ``{"type": "stats", "time": t, "links": {link: {cat: bytes}}}``
event      ``{"type": "event", "time": t, "category": c, "node": n,
           "detail": {...}}``
=========  ==========================================================

The header is first; stats snapshots and events follow in time order.
Lines without a ``type`` key are treated as events (the seed's
:func:`repro.analysis.timeline.export_trace_json` format).

Imports from ``repro.sim`` / ``repro.core`` are deferred to call time:
``repro.sim.trace`` itself imports :mod:`repro.obs.store`, and a
module-level back-import here would be circular.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union

from .store import TraceQueryMixin, TraceStore

__all__ = [
    "FORMAT_VERSION",
    "TraceArchive",
    "digest_events",
    "event_record",
    "export_run",
    "import_run",
    "read_events",
    "summarize_mobility",
]

FORMAT_VERSION = 1

PathOrFile = Union[str, "TextIO"]


def _jsonable(detail: Dict[str, Any]) -> Dict[str, Any]:
    """Detail dict with every value reduced to a JSON scalar/list."""
    out: Dict[str, Any] = {}
    for key, value in detail.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [str(v) for v in value]
        else:
            out[key] = str(value)
    return out


def event_record(event: Any) -> Dict[str, Any]:
    """The schema-v1 JSONL record for one trace event."""
    return {
        "type": "event",
        "time": event.time,
        "category": event.category,
        "node": event.node,
        "detail": _jsonable(event.detail),
    }


def digest_events(events: Iterable[Any]) -> str:
    """SHA-256 over the schema-v1 serialization of an event stream.

    The digest covers the exact bytes :func:`export_run` writes per
    event line (plus the format version), so two runs digest equal iff
    their exported JSONL event streams are byte-for-byte identical —
    the contract of the golden-trace regression suite
    (``tests/goldens/``).
    """
    h = hashlib.sha256()
    h.update(f"version:{FORMAT_VERSION}\n".encode())
    for event in events:
        h.update(json.dumps(event_record(event)).encode())
        h.update(b"\n")
    return h.hexdigest()


def export_run(
    path: str,
    tracer: Any,
    snapshots: Iterable[Any] = (),
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write header + stats snapshots + all trace events; returns the
    number of event lines written.

    ``tracer`` is anything exposing ``events`` (live ``Tracer`` or a
    :class:`TraceArchive`); ``snapshots`` are
    :class:`~repro.core.metrics.StatsSnapshot` instances.
    """
    written = 0
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {"type": "header", "version": FORMAT_VERSION, "meta": meta or {}}
            )
        )
        fh.write("\n")
        for snap in snapshots:
            fh.write(
                json.dumps({"type": "stats", "time": snap.time, "links": snap.data})
            )
            fh.write("\n")
        for event in tracer.events:
            fh.write(json.dumps(event_record(event)))
            fh.write("\n")
            written += 1
    return written


def read_events(path: str) -> List[Any]:
    """Just the events from a JSONL trace (seed-format compatible)."""
    return import_run(path).events


def import_run(path: str) -> "TraceArchive":
    """Load a JSONL trace into an offline, queryable archive."""
    from ..sim.trace import TraceEvent  # deferred: sim.trace imports obs.store

    meta: Dict[str, Any] = {}
    version = FORMAT_VERSION
    events: List[TraceEvent] = []
    snapshots: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            kind = raw.get("type", "event")
            if kind == "header":
                version = raw.get("version", FORMAT_VERSION)
                if version > FORMAT_VERSION:
                    raise ValueError(
                        f"{path}:{lineno}: unsupported trace version {version}"
                    )
                meta = raw.get("meta", {})
            elif kind == "stats":
                snapshots.append(raw)
            elif kind == "event":
                events.append(
                    TraceEvent(
                        time=raw["time"],
                        category=raw["category"],
                        node=raw["node"],
                        detail=raw.get("detail", {}),
                    )
                )
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return TraceArchive(events, snapshots=snapshots, meta=meta, version=version)


class TraceArchive(TraceQueryMixin):
    """An imported run: the full ``Tracer`` query API, offline.

    Analysis code written against :class:`~repro.sim.trace.Tracer`
    (``query``/``first``/``last``/``count``) runs unchanged against an
    archive; stats snapshots come back as real ``StatsSnapshot``
    objects so §4.3 delta arithmetic works too.
    """

    def __init__(
        self,
        events: Iterable[Any],
        snapshots: Iterable[Dict[str, Any]] = (),
        meta: Optional[Dict[str, Any]] = None,
        version: int = FORMAT_VERSION,
    ) -> None:
        self.meta = dict(meta or {})
        self.version = version
        self._store = TraceStore()
        for event in sorted(events, key=lambda ev: ev.time):
            self._store.append(event)
        self._raw_snapshots = sorted(snapshots, key=lambda s: s["time"])

    @property
    def snapshots(self) -> List[Any]:
        """Stats snapshots in time order, as ``StatsSnapshot`` objects."""
        from ..core.metrics import StatsSnapshot  # deferred: core imports sim

        return [
            StatsSnapshot(time=raw["time"], data=raw["links"])
            for raw in self._raw_snapshots
        ]

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceArchive events={len(self._store)} "
            f"snapshots={len(self._raw_snapshots)} meta={self.meta!r}>"
        )


def summarize_mobility(
    trace: Any,
    move_time: float,
    receiver: str,
    old_link: str,
    snapshots: Iterable[Any],
    group: Optional[str] = None,
) -> Dict[str, Any]:
    """Join/leave delay and the §4.3 bandwidth split, from any trace.

    ``trace`` is anything with the tracer query API — the live
    :class:`~repro.sim.trace.Tracer` or an offline
    :class:`TraceArchive` — so the *same* computation produces the live
    and the offline numbers (the reproducibility contract of
    ``python -m repro trace``).

    ``snapshots`` must contain at least a pre-move and an end-of-run
    stats snapshot; the earliest is the baseline for the deltas.
    """
    snaps = sorted(snapshots, key=lambda s: s.time)
    join_ev = trace.first("mcast.deliver", node=receiver, since=move_time)
    leave_kw: Dict[str, Any] = {"event": "members-gone", "link": old_link}
    if group is not None:
        leave_kw["group"] = group
    leave_ev = trace.first("mld", since=move_time, **leave_kw)

    out: Dict[str, Any] = {
        "move_time": move_time,
        "receiver": receiver,
        "old_link": old_link,
        "join_delay": join_ev.time - move_time if join_ev else None,
        "leave_delay": leave_ev.time - move_time if leave_ev else None,
        "prunes": trace.count("pim", since=move_time, event="prune-sent"),
        "grafts": trace.count("pim", since=move_time, event="graft-sent"),
        "asserts": trace.count("pim", since=move_time, event="assert-sent"),
        "deliveries": trace.count("mcast.deliver", node=receiver),
        "events_total": trace.count(),
    }
    if len(snaps) >= 2:
        delta = snaps[-1].delta(snaps[0])
        out["wasted_bytes_old_link"] = delta.bytes_on(
            old_link, "mcast_data"
        ) + delta.bytes_on(old_link, "tunnel_overhead")
        out["tunnel_overhead"] = delta.total("tunnel_overhead")
        out["mld_bytes"] = delta.total("mld")
        out["pim_bytes"] = delta.total("pim")
        out["mipv6_bytes"] = delta.total("mipv6")
    return out
