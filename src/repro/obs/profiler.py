"""Kernel hotspot profiler.

Aggregates wall-clock time and dispatch counts per event label inside
:meth:`repro.sim.kernel.Simulator.step`/``run``.  The kernel calls
:meth:`KernelProfiler.account` around every callback only while a
profiler is installed (``Simulator.set_profiler``); when none is, the
dispatch loop pays a single ``is None`` check per event, so profiling
can stay compiled-in without taxing benchmark runs.

Labels come from ``schedule(..., label=...)`` where call sites provide
one (``"R3.join"``, ``"S.move"``) and fall back to the callback's
``__qualname__`` (``"Link._deliver"``, ``"Timer._fire"``), which groups
hotspots by code path.

Usage::

    profiler = KernelProfiler()
    profiler.install(net.sim)
    sc.converge()
    print(profiler.report(top_n=10))

or scoped::

    with profiled(net.sim) as profiler:
        sc.converge()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List

__all__ = ["KernelProfiler", "ProfileEntry", "profiled"]


@dataclass(frozen=True)
class ProfileEntry:
    """Aggregated cost of one dispatch label."""

    label: str
    count: int
    total_time: float

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0


class KernelProfiler:
    """Per-label dispatch count / wall-clock aggregation."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: Dict[str, List[float]] = {}  # label -> [count, total]

    # ------------------------------------------------------------------
    # kernel-facing
    # ------------------------------------------------------------------
    def account(self, label: str, elapsed: float) -> None:
        """Charge one dispatched callback (called by the kernel)."""
        record = self._records.get(label)
        if record is None:
            self._records[label] = [1, elapsed]
        else:
            record[0] += 1
            record[1] += elapsed

    def install(self, sim: Any) -> "KernelProfiler":
        sim.set_profiler(self)
        return self

    def uninstall(self, sim: Any) -> None:
        sim.set_profiler(None)

    def reset(self) -> None:
        self._records.clear()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(int(record[0]) for record in self._records.values())

    @property
    def total_time(self) -> float:
        return sum(record[1] for record in self._records.values())

    def entries(self) -> List[ProfileEntry]:
        """All labels, most expensive first."""
        out = [
            ProfileEntry(label, int(record[0]), record[1])
            for label, record in self._records.items()
        ]
        out.sort(key=lambda entry: (-entry.total_time, entry.label))
        return out

    def top(self, n: int = 10) -> List[ProfileEntry]:
        return self.entries()[:n]

    def report(self, top_n: int = 10) -> str:
        """Aligned top-N hotspot table."""
        total = self.total_time
        lines = [
            f"kernel profile — {self.total_events} events, "
            f"{total * 1e3:.1f} ms total dispatch time",
            f"{'rank':>4}  {'label':<40} {'count':>9} {'total':>10} "
            f"{'mean':>10} {'share':>7}",
        ]
        for rank, entry in enumerate(self.top(top_n), start=1):
            share = entry.total_time / total * 100 if total else 0.0
            lines.append(
                f"{rank:>4}  {entry.label:<40} {entry.count:>9} "
                f"{entry.total_time * 1e3:>8.2f}ms "
                f"{entry.mean_time * 1e6:>8.2f}µs {share:>6.1f}%"
            )
        remaining = len(self._records) - top_n
        if remaining > 0:
            lines.append(f"      ... and {remaining} more labels")
        return "\n".join(lines)


@contextmanager
def profiled(sim: Any, profiler: KernelProfiler | None = None) -> Iterator[KernelProfiler]:
    """Install a profiler for the duration of a ``with`` block."""
    prof = profiler if profiler is not None else KernelProfiler()
    sim.set_profiler(prof)
    try:
        yield prof
    finally:
        sim.set_profiler(None)
