"""Command-line experiment runner.

Reproduces any experiment from DESIGN.md §5 without writing code::

    python -m repro list                 # available experiments
    python -m repro fig1                 # Figure 1 tree
    python -m repro fig2 --seed 3        # Figure 2 receiver move
    python -m repro fig2 --json          # machine-readable results
    python -m repro compare              # the full §4.3 comparison
    python -m repro timers --intervals 10 25 60 125
    python -m repro scaling              # HA load sweeps (§4.3.2)
    python -m repro table1

Campaigns (see docs/CAMPAIGNS.md)::

    python -m repro sweep compare --jobs 4 --cache-dir .repro-cache
    python -m repro sweep timers --intervals 10 25 --repeats 2 --jobs 2
    python -m repro sweep scaling --json

Generated topologies (see docs/TOPOLOGIES.md)::

    python -m repro topo --model hier --depth 3 --fanout 10   # describe
    python -m repro topo --model waxman --nodes 80 --json     # + digest
    python -m repro sweep scale --jobs 4                      # EXP-S1
    python -m repro sweep scale --sizes 2x5 3x5 --receivers 100 500

Fault injection (see docs/FAULTS.md)::

    python -m repro faults                         # loss sweep, 4 approaches
    python -m repro faults --scenario ha-crash     # home-agent crash study
    python -m repro faults --loss 0.0 0.02 --jobs 4 --json

Observability (see docs/OBSERVABILITY.md)::

    python -m repro trace --export run.jsonl   # run + persist the trace
    python -m repro trace --import run.jsonl   # same numbers, offline
    python -m repro trace --metrics            # Prometheus-text metrics
    python -m repro profile fig2 --top 10      # kernel hotspot report

Causal spans (see docs/OBSERVABILITY.md)::

    python -m repro spans                      # phase-attribution table
    python -m repro spans --loss 0.0 0.05      # ... under wireless loss
    python -m repro spans --export spans.json  # Chrome/Perfetto trace
    python -m repro spans --handover list      # enumerate handovers
    python -m repro spans --handover handover:R3:1   # one span tree
    python -m repro trace --txn handover:R3:1 --export slice.jsonl

Performance baselines (see docs/PERFORMANCE.md)::

    python -m repro bench                      # -> BENCH_KERNEL.json
    python -m repro bench --quick --baseline \\
        benchmarks/results/bench_kernel_baseline.json   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from typing import Any, Callable, Dict, Optional

from .analysis import fmt_seconds, render_figure
from .campaign import CampaignError, CampaignRunner
from .core import (
    ALL_APPROACHES,
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    ROUTER_LINKS,
    PaperScenario,
    ScenarioConfig,
    render_fluid_report,
    render_scale_report,
    render_scaling,
    render_table1,
    run_fluid_study,
    run_full_comparison,
    run_ha_load_vs_groups,
    run_ha_load_vs_mobiles,
    run_ha_load_vs_rate,
    run_scale_sweep,
    run_timer_sweep,
)
from .core.goldens import CANNED_RUNS
from .core.report import generate_report
from .core.timer_optimization import render_sweep
from .mld import MldConfig
from .obs import (
    KernelProfiler,
    MetricsRegistry,
    TraceCollector,
    export_run,
    import_run,
    summarize_mobility,
)

__all__ = ["main"]


def _print_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _scenario_config(args: argparse.Namespace, approach) -> ScenarioConfig:
    """ScenarioConfig from the shared experiment flags."""
    return ScenarioConfig(
        seed=args.seed,
        approach=approach,
        traffic_model=getattr(args, "traffic_model", "packet"),
        probe_interval=getattr(args, "probe_interval", None),
    )


def _fig1(args: argparse.Namespace) -> None:
    sc = PaperScenario(_scenario_config(args, LOCAL_MEMBERSHIP))
    sc.converge()
    sc.finish()
    asserts, prunes = sc.metrics.assert_count(), sc.metrics.prune_count()
    if args.json:
        _print_json(
            {
                "experiment": "fig1",
                "seed": args.seed,
                "tree": sc.current_tree(),
                "asserts": asserts,
                "prunes": prunes,
            }
        )
        return
    print(render_figure(sc.current_tree(), "L1", ROUTER_LINKS,
                        title="Figure 1 — initial distribution tree"))
    print(f"asserts: {asserts}  prunes: {prunes}")


def _fig2(args: argparse.Namespace) -> None:
    sc = PaperScenario(_scenario_config(args, LOCAL_MEMBERSHIP))
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(40.0 + 260.0 + 30.0)
    sc.finish()
    join, leave = sc.join_delay("R3", 40.0), sc.leave_delay("L4", 40.0)
    if args.json:
        _print_json(
            {
                "experiment": "fig2",
                "seed": args.seed,
                "tree": sc.current_tree(),
                "join_delay": join,
                "leave_delay": leave,
                "leave_delay_bound": 260.0,
            }
        )
        return
    print(render_figure(sc.current_tree(), "L1", ROUTER_LINKS,
                        title="Figure 2 — after R3 moved Link4->Link6"))
    print(f"join delay:  {fmt_seconds(join)}")
    print(f"leave delay: {fmt_seconds(leave)} (bound 260 s)")


def _fig3(args: argparse.Namespace) -> None:
    sc = PaperScenario(_scenario_config(args, BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("R3", "L1", at=40.0)
    sc.run_until(90.0)
    sc.finish()
    d = sc.paper.router("D")
    groups = [str(g) for g in d.groups_on_behalf()]
    if args.json:
        _print_json(
            {
                "experiment": "fig3",
                "seed": args.seed,
                "tree": sc.current_tree(),
                "tunneled_datagrams": d.tunneled_to_mobiles,
                "groups_on_behalf": groups,
            }
        )
        return
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        tunnels=[("Router D", f"R3 @ {sc.paper.host('R3').care_of_address}",
                  "HA->MH multicast tunnel")],
        title="Figure 3 — R3 via home-agent tunnel",
    ))
    print(f"tunneled datagrams: {d.tunneled_to_mobiles}  "
          f"on-behalf groups: {groups}")


def _fig4(args: argparse.Namespace) -> None:
    sc = PaperScenario(_scenario_config(args, BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("S", "L6", at=40.0)
    sc.run_until(100.0)
    sc.finish()
    reverse_tunneled = sc.paper.router("A").reverse_tunneled
    if args.json:
        _print_json(
            {
                "experiment": "fig4",
                "seed": args.seed,
                "tree": sc.current_tree(),
                "reverse_tunneled": reverse_tunneled,
            }
        )
        return
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        tunnels=[(f"S @ {sc.paper.sender.care_of_address}", "Router A",
                  "MH->HA multicast tunnel")],
        title="Figure 4 — S via reverse tunnel (tree unchanged)",
    ))
    print(f"reverse-tunneled: {reverse_tunneled}")


def _table1(args: argparse.Namespace) -> None:
    if args.json:
        _print_json(
            {
                "experiment": "table1",
                "approaches": [
                    {
                        "key": a.key,
                        "title": a.title,
                        "recv_mode": str(a.recv_mode),
                        "send_mode": str(a.send_mode),
                    }
                    for a in ALL_APPROACHES
                ],
            }
        )
        return
    print(render_table1())


def _compare(args: argparse.Namespace) -> None:
    report = run_full_comparison(
        seed=args.seed,
        traffic_model=getattr(args, "traffic_model", "packet"),
        probe_interval=getattr(args, "probe_interval", None),
    )
    if args.json:
        _print_json(
            {
                "experiment": "compare",
                "seed": args.seed,
                "all_claims_hold": report.all_claims_hold,
                "receiver_rows": report.receiver_rows,
                "join_study_rows": report.join_study_rows,
                "sender_rows": report.sender_rows,
                "claims": [
                    {"claim": text, "holds": ok, "detail": detail}
                    for text, ok, detail in report.claims
                ],
            }
        )
    else:
        print(report.render())
    sys.exit(0 if report.all_claims_hold else 1)


def _timers(args: argparse.Namespace) -> None:
    points = run_timer_sweep(
        query_intervals=tuple(args.intervals),
        seeds=tuple(range(args.repeats)),
    )
    if args.json:
        _print_json(
            {
                "experiment": "timers",
                "points": [
                    {
                        **asdict(p),
                        "mean_join_delay": p.mean_join_delay,
                        "mean_leave_delay": p.mean_leave_delay,
                    }
                    for p in points
                ],
            }
        )
        return
    print(render_sweep(points))


def _report(args: argparse.Namespace) -> None:
    text = generate_report(seed=args.seed)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)


def _scaling(args: argparse.Namespace) -> None:
    traffic = dict(
        traffic_model=getattr(args, "traffic_model", "packet"),
        probe_interval=getattr(args, "probe_interval", None),
    )
    mobiles = run_ha_load_vs_mobiles(counts=(1, 2, 4, 8), **traffic)
    groups = run_ha_load_vs_groups(counts=(1, 2, 4), **traffic)
    if args.json:
        _print_json(
            {"experiment": "scaling", "mobiles": mobiles, "groups": groups}
        )
        return
    print(render_scaling(mobiles, "mobiles"))
    print()
    print(render_scaling(groups, "groups"))


# ----------------------------------------------------------------------
# campaign sweeps (docs/CAMPAIGNS.md)
# ----------------------------------------------------------------------

def _campaign_runner(args: argparse.Namespace, registry) -> CampaignRunner:
    """Validated runner from --jobs / --cache-dir, progress on stderr."""
    if args.jobs < 1:
        raise SystemExit(f"error: --jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        raise SystemExit(f"error: --retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"error: --timeout must be positive, got {args.timeout}")
    if args.resume and not args.checkpoint:
        raise SystemExit("error: --resume requires --checkpoint PATH")

    def progress(done: int, total: int, outcome) -> None:
        if args.json:
            return
        if not outcome.ok:
            source = f"FAILED after {outcome.attempts} attempt(s)"
        elif outcome.cached:
            source = "cache"
        else:
            source = f"{outcome.elapsed:.1f}s"
        print(
            f"  [{done}/{total}] {outcome.cell.task} ({source})",
            file=sys.stderr,
        )

    try:
        return CampaignRunner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            master_seed=args.seed,
            registry=registry,
            progress=progress,
            timeout=args.timeout,
            retries=args.retries,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except (NotADirectoryError, OSError) as exc:
        raise SystemExit(f"error: invalid --cache-dir: {exc}")


def _parse_scale_sizes(model: str, tokens) -> Optional[list]:
    """``--sizes`` tokens to model-param dicts: hier takes DEPTHxFANOUT
    pairs ("3x10"), fattree takes k values, waxman takes node counts."""
    if tokens is None:
        return None
    sizes = []
    for tok in tokens:
        try:
            if model == "hier":
                depth, _, fanout = tok.partition("x")
                sizes.append({"depth": int(depth), "fanout": int(fanout)})
            elif model == "fattree":
                sizes.append({"k": int(tok)})
            else:
                sizes.append({"n": int(tok)})
        except ValueError:
            expect = "DEPTHxFANOUT" if model == "hier" else "an integer"
            raise SystemExit(
                f"error: bad --sizes token {tok!r} for model {model!r} "
                f"(expected {expect})"
            )
    return sizes


def _sweep(args: argparse.Namespace) -> None:
    if args.repeats < 1:
        raise SystemExit(f"error: --repeats must be >= 1, got {args.repeats}")
    if args.shards < 1:
        raise SystemExit(f"error: --shards must be >= 1, got {args.shards}")
    if args.shards != 1 and args.grid != "scale":
        raise SystemExit(
            f"error: --shards applies to the scale grid only "
            f"(got grid={args.grid!r})"
        )
    registry = MetricsRegistry()
    runner = _campaign_runner(args, registry)
    payload: Dict[str, Any] = {
        "experiment": "sweep",
        "grid": args.grid,
        "seed": args.seed,
        "jobs": args.jobs,
        "cache_dir": args.cache_dir,
    }
    sections = []

    traffic_model = getattr(args, "traffic_model", "packet")
    probe_interval = getattr(args, "probe_interval", None)
    if args.grid == "compare":
        report = run_full_comparison(
            seed=args.seed,
            runner=runner,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
        )
        payload.update(
            {
                "all_claims_hold": report.all_claims_hold,
                "receiver_rows": report.receiver_rows,
                "join_study_rows": report.join_study_rows,
                "sender_rows": report.sender_rows,
                "claims": [
                    {"claim": text, "holds": ok, "detail": detail}
                    for text, ok, detail in report.claims
                ],
            }
        )
        sections.append(report.render())
    elif args.grid == "timers":
        points = run_timer_sweep(
            query_intervals=tuple(args.intervals),
            seeds=tuple(range(args.repeats)),
            runner=runner,
        )
        payload["points"] = [
            {
                **asdict(p),
                "mean_join_delay": p.mean_join_delay,
                "mean_leave_delay": p.mean_leave_delay,
            }
            for p in points
        ]
        sections.append(render_sweep(points))
    elif args.grid == "scale":
        report = run_scale_sweep(
            sizes=_parse_scale_sizes(args.topo_model, args.sizes),
            receivers=tuple(args.receivers),
            groups=tuple(args.groups),
            mobility=tuple(args.mobility),
            model=args.topo_model,
            seed=args.seed,
            duration=args.duration,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
            shards=args.shards,
            shard_executor=args.shard_executor,
            runner=runner,
        )
        payload["report"] = report
        sections.append(render_scale_report(report))
    elif args.grid == "fluid":
        # EXP-S2 runs both engines itself; cells are sequential (the
        # packet 10^4 cell dominates) so no campaign sharding here.
        study = run_fluid_study(
            sizes=_parse_scale_sizes("hier", args.sizes),
            receivers=tuple(args.receivers),
            seed=args.seed,
            duration=args.duration,
            mobility=args.mobility[0] if args.mobility else 0.0,
            **(
                {"probe_interval": probe_interval}
                if probe_interval is not None
                else {}
            ),
        )
        payload["report"] = study
        sections.append(render_fluid_report(study))
    elif args.grid == "chaos":
        from .chaos import render_chaos_report, run_chaos_sweep

        report = run_chaos_sweep(
            seed=args.seed,
            traffic_models=(traffic_model,),
            probe_interval=probe_interval,
            runner=runner,
        )
        payload["report"] = report
        sections.append(render_chaos_report(report))
    else:  # scaling
        mobiles = run_ha_load_vs_mobiles(counts=(1, 2, 4, 8), seed=args.seed,
                                         runner=runner,
                                         traffic_model=traffic_model,
                                         probe_interval=probe_interval)
        groups = run_ha_load_vs_groups(counts=(1, 2, 4), seed=args.seed,
                                       runner=runner,
                                       traffic_model=traffic_model,
                                       probe_interval=probe_interval)
        rate = run_ha_load_vs_rate(packet_intervals=(0.2, 0.1, 0.05),
                                   seed=args.seed, runner=runner,
                                   traffic_model=traffic_model,
                                   probe_interval=probe_interval)
        payload.update({"mobiles": mobiles, "groups": groups, "rate": rate})
        sections.append(render_scaling(mobiles, "mobiles"))
        sections.append(render_scaling(groups, "groups"))
        sections.append(render_scaling(rate, "packets_per_s"))

    stats = runner.stats()
    payload["campaign"] = stats
    if args.json:
        _print_json(payload)
        return
    print("\n\n".join(sections))
    print(
        f"\ncampaign: {stats['cells']} cells, {stats['executed']} executed, "
        f"{stats['cached']} cached, {stats['failed']} failed, "
        f"{stats['retries']} retries, jobs={stats['jobs']}, "
        f"wall {stats['wall_clock']:.1f}s"
    )
    if args.metrics:
        print(registry.render_prometheus(), end="")


def _faults(args: argparse.Namespace) -> None:
    from .faults.experiments import (
        render_crash_table,
        render_fault_table,
        run_crash_study,
        run_fault_sweep,
    )
    from .faults.resilience import publish_resilience

    by_key = {a.key: a for a in ALL_APPROACHES}
    unknown = [k for k in args.approaches if k not in by_key]
    if unknown:
        raise SystemExit(
            f"error: unknown approach(es) {', '.join(unknown)}; "
            f"known: {', '.join(by_key)}"
        )
    approaches = tuple(by_key[k] for k in args.approaches)
    for rate in args.loss:
        if not 0.0 <= rate < 1.0:
            raise SystemExit(f"error: --loss rates must be in [0, 1), got {rate}")

    registry = MetricsRegistry()
    runner = _campaign_runner(args, registry)
    payload: Dict[str, Any] = {
        "experiment": "faults",
        "scenario": args.scenario,
        "seed": args.seed,
        "jobs": args.jobs,
        "cache_dir": args.cache_dir,
    }
    sections = []
    rows = []
    if args.scenario in ("loss", "both"):
        loss_rows = run_fault_sweep(
            loss_rates=tuple(args.loss),
            approaches=approaches,
            seed=args.seed,
            model=args.model,
            runner=runner,
        )
        payload["loss_rows"] = loss_rows
        rows += loss_rows
        sections.append(render_fault_table(loss_rows))
    if args.scenario in ("ha-crash", "both"):
        crash_rows = run_crash_study(
            approaches=approaches, seed=args.seed, runner=runner
        )
        payload["crash_rows"] = crash_rows
        rows += crash_rows
        sections.append(render_crash_table(crash_rows))

    publish_resilience(registry, rows)
    stats = runner.stats()
    payload["campaign"] = stats
    if args.json:
        _print_json(payload)
        return
    print("\n\n".join(sections))
    print(
        f"\ncampaign: {stats['cells']} cells, {stats['executed']} executed, "
        f"{stats['cached']} cached, {stats['failed']} failed, "
        f"{stats['retries']} retries, jobs={stats['jobs']}, "
        f"wall {stats['wall_clock']:.1f}s"
    )
    if args.metrics:
        print(registry.render_prometheus(), end="")


# ----------------------------------------------------------------------
# observability commands
# ----------------------------------------------------------------------

#: The canned trace scenario: the Figure 2 receiver move, run long
#: enough to observe both the join and the leave (bounded by T_MLI).
_TRACE_MOVE_AT = 40.0
_TRACE_RECEIVER = "R3"
_TRACE_OLD_LINK = "L4"
_TRACE_NEW_LINK = "L6"


def _render_summary(summary: Dict[str, Any], source: str) -> str:
    lines = [f"trace summary — receiver move ({source})"]
    lines.append(f"  join delay:        {fmt_seconds(summary['join_delay'])}")
    lines.append(f"  leave delay:       {fmt_seconds(summary['leave_delay'])}")
    for key, label in (
        ("wasted_bytes_old_link", "wasted (old link)"),
        ("tunnel_overhead", "tunnel overhead"),
        ("mld_bytes", "MLD signaling"),
        ("pim_bytes", "PIM signaling"),
        ("mipv6_bytes", "MIPv6 signaling"),
    ):
        if key in summary:
            lines.append(f"  {label + ':':<19}{summary[key]} B")
    lines.append(
        f"  prunes/grafts/asserts since move: {summary['prunes']}"
        f"/{summary['grafts']}/{summary['asserts']}"
    )
    lines.append(f"  trace events:      {summary['events_total']}")
    return "\n".join(lines)


def _slicing_requested(args: argparse.Namespace) -> bool:
    return (
        args.txn is not None or args.since is not None or args.until is not None
    )


def _trace_slice(events, args: argparse.Namespace, source: str) -> None:
    """``--since/--until/--txn``: slice a trace to a time window (or to
    one transaction's window) and print or re-export it."""
    from types import SimpleNamespace

    from .obs.spans import build_spans, find_span

    since, until = args.since, args.until
    txn = None
    if args.txn is not None:
        roots = build_spans(SimpleNamespace(events=events))
        txn = find_span(roots, args.txn)
        if txn is None:
            known = [s.span_id for s in roots if s.kind == "handover"]
            raise SystemExit(
                f"error: span {args.txn!r} not found; handovers in this "
                f"trace: {', '.join(known) or '(none)'}"
            )
        since = txn.start if since is None else max(since, txn.start)
        until = txn.end if until is None else min(until, txn.end)
    sliced = [
        ev
        for ev in events
        if (since is None or ev.time >= since)
        and (until is None or ev.time <= until)
    ]
    window = {
        "since": since,
        "until": until,
        "txn": args.txn,
        "events": len(sliced),
        "events_total": len(events),
    }
    exported = None
    if args.export:
        meta: Dict[str, Any] = {"source": source, "slice": dict(window)}
        if txn is not None:
            meta["txn"] = {
                "span_id": txn.span_id,
                "kind": txn.kind,
                "name": txn.name,
                "node": txn.node,
            }
        count = export_run(
            args.export, SimpleNamespace(events=sliced), snapshots=(), meta=meta
        )
        exported = {"path": args.export, "events": count}
    if args.json:
        categories: Dict[str, int] = {}
        for ev in sliced:
            categories[ev.category] = categories.get(ev.category, 0) + 1
        payload = {"source": source, **window, "categories": categories}
        if exported:
            payload["exported"] = exported
        _print_json(payload)
        return
    label = f"txn {args.txn}" if args.txn else "time window"
    lo = "start" if since is None else f"{since:.6f}"
    hi = "end" if until is None else f"{until:.6f}"
    print(
        f"trace slice — {label} [{lo}, {hi}] "
        f"({len(sliced)}/{len(events)} events, {source})"
    )
    limit = 200
    for ev in sliced[:limit]:
        print(repr(ev))
    if len(sliced) > limit:
        print(f"... {len(sliced) - limit} more (use --export to keep them all)")
    if exported:
        print(f"exported {exported['events']} events to {exported['path']}")


def _trace(args: argparse.Namespace) -> None:
    if args.capacity is not None and args.capacity <= 0:
        raise SystemExit(f"error: --capacity must be positive, got {args.capacity}")
    if args.import_path:
        try:
            archive = import_run(args.import_path)
        except OSError as exc:
            raise SystemExit(f"error: cannot read trace file: {exc}")
        except ValueError as exc:
            raise SystemExit(f"error: invalid trace file: {exc}")
        if _slicing_requested(args):
            _trace_slice(archive.events, args, f"offline: {args.import_path}")
            return
        meta = archive.meta
        summary = summarize_mobility(
            archive,
            move_time=meta.get("move_time", _TRACE_MOVE_AT),
            receiver=meta.get("receiver", _TRACE_RECEIVER),
            old_link=meta.get("old_link", _TRACE_OLD_LINK),
            snapshots=archive.snapshots,
            group=meta.get("group"),
        )
        if args.json:
            _print_json({"source": args.import_path, "meta": meta, **summary})
        else:
            print(_render_summary(summary, f"offline: {args.import_path}"))
        return

    sc = PaperScenario(ScenarioConfig(seed=args.seed, approach=LOCAL_MEMBERSHIP))
    if args.capacity is not None:
        sc.net.tracer.set_capacity(args.capacity)
    registry = MetricsRegistry()
    TraceCollector(registry).attach(sc.net.tracer)
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move(_TRACE_RECEIVER, _TRACE_NEW_LINK, at=_TRACE_MOVE_AT)
    t_mli = (sc.config.mld or MldConfig()).multicast_listener_interval
    sc.run_until(_TRACE_MOVE_AT + t_mli + 30.0)
    sc.finish()
    snapshots = [before, sc.metrics.snapshot()]

    if _slicing_requested(args):
        _trace_slice(list(sc.net.tracer.events), args, f"live run, seed {args.seed}")
        return

    summary = summarize_mobility(
        sc.net.tracer,
        move_time=_TRACE_MOVE_AT,
        receiver=_TRACE_RECEIVER,
        old_link=_TRACE_OLD_LINK,
        snapshots=snapshots,
        group=str(sc.group),
    )
    if args.export:
        count = export_run(
            args.export,
            sc.net.tracer,
            snapshots=snapshots,
            meta={
                "scenario": "fig2-receiver-move",
                "seed": args.seed,
                "move_time": _TRACE_MOVE_AT,
                "receiver": _TRACE_RECEIVER,
                "old_link": _TRACE_OLD_LINK,
                "new_link": _TRACE_NEW_LINK,
                "group": str(sc.group),
            },
        )
    if args.json:
        payload = {"source": "live", "seed": args.seed, **summary}
        if args.export:
            payload["exported"] = {"path": args.export, "events": count}
        _print_json(payload)
    else:
        print(_render_summary(summary, f"live run, seed {args.seed}"))
        if args.export:
            print(f"exported {count} events to {args.export}")
    if args.metrics:
        sc.metrics.publish(registry)
        print(registry.render_prometheus(), end="")


def _render_span_tree(span, indent: int = 0) -> str:
    pad = "  " * indent
    dur = "open" if span.end is None else fmt_seconds(span.end - span.start)
    attrs = " ".join(
        f"{k}={v}" for k, v in sorted(span.attrs.items()) if v is not None
    )
    lines = [
        f"{pad}{span.span_id:<24} {span.name:<24} "
        f"t={span.start:<11.6f} dur={dur:<8} {attrs}".rstrip()
    ]
    for child in span.children:
        lines.append(_render_span_tree(child, indent + 1))
    return "\n".join(lines)


def _spans(args: argparse.Namespace) -> None:
    """Phase-attributed handover analysis (see docs/OBSERVABILITY.md)."""
    from .analysis.phases import render_phase_table, run_span_breakdown
    from .obs.spans import SpanRecorder, find_span, write_chrome_trace

    by_key = {a.key: a for a in ALL_APPROACHES}
    unknown = [k for k in args.approaches if k not in by_key]
    if unknown:
        raise SystemExit(
            f"error: unknown approach(es) {', '.join(unknown)}; "
            f"known: {', '.join(by_key)}"
        )
    approaches = tuple(by_key[k] for k in args.approaches)
    for rate in args.loss:
        if not 0.0 <= rate < 1.0:
            raise SystemExit(f"error: --loss rates must be in [0, 1), got {rate}")

    if args.export or args.handover:
        # drill-down mode: one live span-recorded receiver move
        approach = approaches[0]
        registry = MetricsRegistry()
        sc = PaperScenario(
            ScenarioConfig(
                seed=args.seed, approach=approach, trace_spans=False
            )
        )
        recorder = SpanRecorder(registry=registry, approach=approach.key).attach(
            sc.net.tracer
        )
        sc.converge()
        sc.move(_TRACE_RECEIVER, _TRACE_NEW_LINK, at=_TRACE_MOVE_AT)
        sc.run_until(_TRACE_MOVE_AT + 60.0)
        sc.finish()
        roots = recorder.finish()
        handovers = [s for s in roots if s.kind == "handover"]
        payload: Dict[str, Any] = {
            "experiment": "spans",
            "approach": approach.key,
            "seed": args.seed,
            "spans": len(roots),
            "handovers": [s.span_id for s in handovers],
        }
        out_lines = []
        if args.handover:
            if args.handover == "list":
                out_lines += [
                    _render_span_tree(s).splitlines()[0] for s in handovers
                ]
                payload["trees"] = [s.to_dict() for s in handovers]
            else:
                span = find_span(roots, args.handover)
                if span is None:
                    raise SystemExit(
                        f"error: span {args.handover!r} not found; handovers: "
                        f"{', '.join(s.span_id for s in handovers) or '(none)'}"
                    )
                out_lines.append(_render_span_tree(span))
                payload["trees"] = [span.to_dict()]
        if args.export:
            count = write_chrome_trace(
                args.export,
                roots,
                meta={"approach": approach.key, "seed": args.seed},
            )
            payload["exported"] = {"path": args.export, "trace_events": count}
            out_lines.append(
                f"wrote {count} trace events to {args.export} "
                "(load in chrome://tracing or ui.perfetto.dev)"
            )
        if args.json:
            _print_json(payload)
        else:
            print("\n".join(out_lines))
        if args.metrics:
            print(registry.render_prometheus(), end="")
        return

    registry = MetricsRegistry()
    runner = _campaign_runner(args, registry)
    rows = run_span_breakdown(
        approaches=approaches,
        loss_rates=tuple(args.loss),
        seed=args.seed,
        runner=runner,
    )
    stats = runner.stats()
    if args.json:
        _print_json(
            {
                "experiment": "spans",
                "seed": args.seed,
                "rows": rows,
                "campaign": stats,
            }
        )
        return
    print(render_phase_table(rows))
    broken = [r for r in rows if not r["equivalent"]]
    if broken:
        print(
            "WARNING: span-derived numbers diverge from the event-level "
            f"computation for: {', '.join(r['approach'] for r in broken)}"
        )
    print(
        f"\ncampaign: {stats['cells']} cells, {stats['executed']} executed, "
        f"{stats['cached']} cached, {stats['failed']} failed, "
        f"{stats['retries']} retries, jobs={stats['jobs']}, "
        f"wall {stats['wall_clock']:.1f}s"
    )


def _bench(args: argparse.Namespace) -> None:
    from .bench import main_bench

    if args.tolerance is not None and not 0.0 <= args.tolerance < 1.0:
        raise SystemExit(
            f"error: --tolerance must be in [0, 1), got {args.tolerance}"
        )
    if args.scale <= 0:
        raise SystemExit(f"error: --scale must be positive, got {args.scale}")
    code = main_bench(
        quick=args.quick,
        scale=args.scale,
        output=args.output,
        baseline=args.baseline,
        tolerance=args.tolerance,
        as_json=args.json,
    )
    if code != 0:
        sys.exit(code)


def _profile(args: argparse.Namespace) -> None:
    recipe = CANNED_RUNS[args.experiment]
    sc = PaperScenario(ScenarioConfig(seed=args.seed, approach=recipe.approach))
    profiler = KernelProfiler().install(sc.net.sim)
    sc.converge()
    if recipe.move is not None:
        sc.move(recipe.move[0], recipe.move[1], at=recipe.move_at)
        sc.run_until(recipe.run_until)
    sc.finish()
    if args.json:
        _print_json(
            {
                "experiment": args.experiment,
                "seed": args.seed,
                "total_events": profiler.total_events,
                "total_time": profiler.total_time,
                "entries": [
                    {
                        "label": e.label,
                        "count": e.count,
                        "total_time": e.total_time,
                        "mean_time": e.mean_time,
                    }
                    for e in profiler.top(args.top)
                ],
            }
        )
        return
    print(profiler.report(top_n=args.top))


def _topo(args: argparse.Namespace) -> None:
    """Generate a topology, validate it, print its description."""
    from .net.topogen import topo_graph

    spec: Dict[str, Any] = {"model": args.model}
    if args.model == "hier":
        spec.update(depth=args.depth, fanout=args.fanout, seed=args.seed)
    elif args.model == "fattree":
        spec.update(k=args.k, seed=args.seed)
    elif args.model == "waxman":
        spec.update(n=args.nodes, alpha=args.alpha, beta=args.beta,
                    seed=args.seed)
    # figure1 takes no parameters
    try:
        graph = topo_graph(spec)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    graph.validate()
    info = graph.describe()
    if args.json:
        _print_json({"experiment": "topo", **info})
        return
    print(f"model: {info['model']}")
    if info["params"]:
        params = ", ".join(f"{k}={v}" for k, v in sorted(info["params"].items()))
        print(f"params: {params}")
    print(
        f"routers: {info['routers']}  links: {info['links']}  "
        f"leaf links: {info['leaf_links']}  interfaces: {info['interfaces']}"
        + (f"  hosts: {info['hosts']}" if info["hosts"] else "")
    )
    deg = info["degree"]
    print(
        f"degree: min {deg['min']}, mean {deg['mean']:.2f}, max {deg['max']}"
    )
    print(
        f"connected: {'yes' if info['connected'] else 'NO'}  "
        f"diameter (est.): {info['diameter_estimate']}"
    )
    print(f"digest: {info['digest']}")


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "table1": _table1,
    "compare": _compare,
    "timers": _timers,
    "scaling": _scaling,
    "sweep": _sweep,
    "faults": _faults,
    "report": _report,
    "trace": _trace,
    "spans": _spans,
    "profile": _profile,
    "bench": _bench,
    "topo": _topo,
}


def _add_invariants_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--check-invariants", action="store_true",
        help="attach the runtime protocol invariant oracles "
        "(repro.invariants) and fail on any violation; propagates to "
        "campaign worker processes (see docs/ROBUSTNESS.md)",
    )


def _add_traffic_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--traffic-model", choices=("packet", "fluid"), default="packet",
        help="traffic engine: per-packet events (exact, default) or "
        "fluid rate integration with sparse probes (scales to "
        "million-receiver runs; see docs/TRAFFIC.md)",
    )
    p.add_argument(
        "--probe-interval", type=float, default=None, metavar="SECONDS",
        help="fluid-mode probe cadence (default: 100 x packet interval)",
    )


def _add_supervisor_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock budget; hung cells are killed "
                   "and retried (jobs >= 2)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts per failing cell before it is "
                   "quarantined (default: 1)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append every executed cell to this JSONL journal")
    p.add_argument("--resume", action="store_true",
                   help="replay completed cells from the --checkpoint "
                   "journal instead of re-running them")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Interoperation of Mobile "
        "IPv6 and PIM Dense Mode' (ICPP 2000).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, help_text in (
        ("fig1", "Figure 1: initial distribution tree"),
        ("fig2", "Figure 2: mobile receiver, local membership"),
        ("fig3", "Figure 3: mobile receiver via HA tunnel"),
        ("fig4", "Figure 4: mobile sender via HA tunnel"),
        ("table1", "Table 1: the four approaches"),
        ("compare", "full §4.3 comparison with claim checks"),
        ("scaling", "HA load scaling sweeps (§4.3.2)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
        _add_invariants_flag(p)
        if name != "table1":  # table1 runs no simulation
            _add_traffic_flags(p)
    report = sub.add_parser("report", help="run everything, emit a Markdown report")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", "-o", default=None)
    _add_invariants_flag(report)
    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid through the parallel campaign engine "
        "(sharding + result cache; see docs/CAMPAIGNS.md)",
    )
    sweep.add_argument("grid",
                       choices=("compare", "timers", "scaling", "scale",
                                "fluid", "chaos"),
                       nargs="?", default="compare",
                       help="which experiment grid to run (default: compare; "
                       "'fluid' runs the EXP-S2 packet-vs-fluid study; "
                       "'chaos' runs the EXP-R3 nemesis/convergence study)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="campaign master seed")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes to shard cells across")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache completed cells here; re-runs only "
                       "execute changed cells")
    sweep.add_argument("--intervals", type=float, nargs="+",
                       default=[10.0, 25.0, 60.0, 125.0],
                       help="T_Query grid for the timers sweep")
    sweep.add_argument("--repeats", type=int, default=3,
                       help="seeds per timer point")
    sweep.add_argument("--metrics", action="store_true",
                       help="also print campaign metrics (Prometheus text)")
    sweep.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    sweep.add_argument("--topo-model", choices=("hier", "fattree", "waxman"),
                       default="hier",
                       help="generator for the scale grid (default: hier)")
    sweep.add_argument("--sizes", nargs="+", default=None, metavar="SIZE",
                       help="scale-grid topology sizes: DEPTHxFANOUT for "
                       "hier (e.g. 3x10), k for fattree, node count for "
                       "waxman (default: the EXP-S1 size ladder)")
    sweep.add_argument("--receivers", type=int, nargs="+",
                       default=[100, 1000],
                       help="scale-grid mobile-receiver populations")
    sweep.add_argument("--groups", type=int, nargs="+", default=[1, 4, 8],
                       help="scale-grid multicast group counts")
    sweep.add_argument("--mobility", type=float, nargs="+", default=[0.0],
                       help="scale-grid mean handovers per receiver")
    sweep.add_argument("--duration", type=float, default=30.0,
                       help="scale-grid measurement window (sim seconds)")
    sweep.add_argument("--shards", type=int, default=1,
                       help="spatial regions per scale-grid cell, executed "
                       "by the conservative sharded kernel (EXP-P2; packet "
                       "traffic model only, default: 1)")
    sweep.add_argument("--shard-executor", choices=("process", "inproc"),
                       default="process",
                       help="sharded-kernel executor: one worker process "
                       "per region (default) or in-process reference")
    _add_traffic_flags(sweep)
    _add_supervisor_flags(sweep)
    _add_invariants_flag(sweep)
    faults = sub.add_parser(
        "faults",
        help="resilience under injected faults: loss sweeps and home-agent "
        "crashes through the campaign engine (see docs/FAULTS.md)",
    )
    faults.add_argument("--scenario", choices=("loss", "ha-crash", "both"),
                        default="loss",
                        help="which fault study to run (default: loss)")
    faults.add_argument("--loss", type=float, nargs="+",
                        default=[0.0, 0.01, 0.05],
                        help="mean loss rates for the wireless-loss sweep")
    faults.add_argument("--model", choices=("gilbert", "bernoulli"),
                        default="gilbert",
                        help="loss process on the wireless link")
    faults.add_argument("--approaches", nargs="+",
                        default=[a.key for a in ALL_APPROACHES],
                        metavar="KEY",
                        help="delivery approaches to compare "
                        f"(default: {' '.join(a.key for a in ALL_APPROACHES)})")
    faults.add_argument("--seed", type=int, default=0,
                        help="campaign master seed")
    faults.add_argument("--jobs", type=int, default=1,
                        help="worker processes to shard cells across")
    faults.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache completed cells here")
    faults.add_argument("--metrics", action="store_true",
                        help="also print resilience metrics (Prometheus text)")
    faults.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    _add_supervisor_flags(faults)
    _add_invariants_flag(faults)
    topo = sub.add_parser(
        "topo",
        help="generate and describe a seeded topology (deterministic "
        "digest; see docs/TOPOLOGIES.md)",
    )
    topo.add_argument("--model", choices=("hier", "fattree", "waxman",
                                          "figure1"),
                      default="hier",
                      help="topology generator (default: hier)")
    topo.add_argument("--depth", type=int, default=3,
                      help="hier: levels below the core (default: 3)")
    topo.add_argument("--fanout", type=int, default=4,
                      help="hier: children per router (default: 4)")
    topo.add_argument("--k", type=int, default=4,
                      help="fattree: arity k, even (default: 4)")
    topo.add_argument("--nodes", type=int, default=50,
                      help="waxman: router count (default: 50)")
    topo.add_argument("--alpha", type=float, default=0.9,
                      help="waxman: edge-probability scale (default: 0.9)")
    topo.add_argument("--beta", type=float, default=0.25,
                      help="waxman: distance decay (default: 0.25)")
    topo.add_argument("--seed", type=int, default=0,
                      help="topology seed (same seed, same digest)")
    topo.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")
    timers = sub.add_parser("timers", help="§4.4 MLD timer sweep")
    timers.add_argument("--seed", type=int, default=0)
    timers.add_argument("--intervals", type=float, nargs="+",
                        default=[10.0, 25.0, 60.0, 125.0])
    timers.add_argument("--repeats", type=int, default=3)
    timers.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    _add_invariants_flag(timers)
    trace = sub.add_parser(
        "trace",
        help="run the receiver-move scenario, export/analyze its JSONL trace",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--export", metavar="PATH", default=None,
                       help="persist the run (events + stats snapshots) as JSONL")
    trace.add_argument("--import", dest="import_path", metavar="PATH", default=None,
                       help="re-analyze a saved JSONL trace offline (no simulation)")
    trace.add_argument("--capacity", type=int, default=None,
                       help="bounded ring-buffer trace mode: keep newest N events")
    trace.add_argument("--since", type=float, default=None, metavar="T",
                       help="slice: keep only events at or after simulation "
                       "time T")
    trace.add_argument("--until", type=float, default=None, metavar="T",
                       help="slice: keep only events at or before simulation "
                       "time T")
    trace.add_argument("--txn", metavar="SPAN_ID", default=None,
                       help="slice to one transaction's window (a span id "
                       "from 'repro spans --handover list', e.g. "
                       "handover:R3:1); combines with --since/--until and "
                       "--export")
    trace.add_argument("--metrics", action="store_true",
                       help="also print the metrics registry (Prometheus text)")
    trace.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    _add_invariants_flag(trace)
    spans_p = sub.add_parser(
        "spans",
        help="causal handover spans: phase-attribution tables through the "
        "campaign engine, Chrome/Perfetto export, per-handover drill-down "
        "(see docs/OBSERVABILITY.md)",
    )
    spans_p.add_argument("--approaches", nargs="+",
                         default=[a.key for a in ALL_APPROACHES],
                         metavar="KEY",
                         help="delivery approaches to break down "
                         f"(default: {' '.join(a.key for a in ALL_APPROACHES)})")
    spans_p.add_argument("--loss", type=float, nargs="+", default=[0.0],
                         help="loss rates for the breakdown grid "
                         "(default: 0.0 — the plain §4.3 pipeline)")
    spans_p.add_argument("--seed", type=int, default=0,
                         help="scenario / campaign master seed")
    spans_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes to shard cells across")
    spans_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache completed cells here")
    spans_p.add_argument("--export", metavar="PATH", default=None,
                         help="run the receiver-move scenario live and write "
                         "its span forest as Chrome trace-event JSON "
                         "(chrome://tracing / ui.perfetto.dev)")
    spans_p.add_argument("--handover", metavar="SPAN_ID", default=None,
                         help="drill into one handover: print its span tree "
                         "('list' enumerates handover span ids)")
    spans_p.add_argument("--metrics", action="store_true",
                         help="also print repro_span_duration_seconds "
                         "histograms (Prometheus text)")
    spans_p.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")
    _add_supervisor_flags(spans_p)
    _add_invariants_flag(spans_p)
    bench = sub.add_parser(
        "bench",
        help="kernel/campaign macro-benchmarks -> BENCH_KERNEL.json "
        "(see docs/PERFORMANCE.md)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke profile: quartered event counts, "
                       "campaign phase skipped")
    bench.add_argument("--output", "-o", default="BENCH_KERNEL.json",
                       metavar="PATH",
                       help="where to write the report "
                       "(default: BENCH_KERNEL.json)")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="compare against this committed report and exit "
                       "1 if any phase's events/sec regresses beyond the "
                       "tolerance")
    bench.add_argument("--tolerance", type=float, default=0.2,
                       help="allowed fractional events/sec regression "
                       "against --baseline (default: 0.2)")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="multiply phase event counts (testing aid)")
    bench.add_argument("--json", action="store_true",
                       help="print the full report JSON instead of the "
                       "summary table")
    profile = sub.add_parser("profile", help="kernel hotspot profile of one experiment")
    profile.add_argument("experiment", choices=sorted(CANNED_RUNS), nargs="?",
                         default="fig2")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=10,
                         help="number of hotspot labels to show")
    profile.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")
    _add_invariants_flag(profile)
    return parser


def main(argv=None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("experiments:", ", ".join(COMMANDS))
        return
    if getattr(args, "check_invariants", False):
        # Environment, not a parameter: worker processes inherit it, so
        # every PaperScenario — local or in a campaign shard —
        # self-attaches an escalating InvariantMonitor.
        from .invariants import ENV_FLAG

        os.environ[ENV_FLAG] = "1"
    from .invariants import InvariantViolationError

    try:
        COMMANDS[args.command](args)
    except InvariantViolationError as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        sys.exit(3)
    except CampaignError as exc:
        print(f"campaign failed: {exc}", file=sys.stderr)
        sys.exit(1)
    except ValueError as exc:
        # parameter validation raised below argparse (e.g. a fluid
        # --probe-interval shorter than the packet interval)
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":  # pragma: no cover
    main()
