"""Command-line experiment runner.

Reproduces any experiment from DESIGN.md §5 without writing code::

    python -m repro list                 # available experiments
    python -m repro fig1                 # Figure 1 tree
    python -m repro fig2 --seed 3        # Figure 2 receiver move
    python -m repro compare              # the full §4.3 comparison
    python -m repro timers --intervals 10 25 60 125
    python -m repro scaling              # HA load sweeps (§4.3.2)
    python -m repro table1
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .analysis import fmt_seconds, render_figure
from .core import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    ROUTER_LINKS,
    PaperScenario,
    ScenarioConfig,
    render_scaling,
    render_table1,
    run_full_comparison,
    run_ha_load_vs_groups,
    run_ha_load_vs_mobiles,
    run_timer_sweep,
)
from .core.report import generate_report
from .core.timer_optimization import render_sweep

__all__ = ["main"]


def _fig1(args: argparse.Namespace) -> None:
    sc = PaperScenario(ScenarioConfig(seed=args.seed, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    print(render_figure(sc.current_tree(), "L1", ROUTER_LINKS,
                        title="Figure 1 — initial distribution tree"))
    print(f"asserts: {sc.metrics.assert_count()}  prunes: {sc.metrics.prune_count()}")


def _fig2(args: argparse.Namespace) -> None:
    sc = PaperScenario(ScenarioConfig(seed=args.seed, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(40.0 + 260.0 + 30.0)
    print(render_figure(sc.current_tree(), "L1", ROUTER_LINKS,
                        title="Figure 2 — after R3 moved Link4->Link6"))
    print(f"join delay:  {fmt_seconds(sc.join_delay('R3', 40.0))}")
    print(f"leave delay: {fmt_seconds(sc.leave_delay('L4', 40.0))} (bound 260 s)")


def _fig3(args: argparse.Namespace) -> None:
    sc = PaperScenario(ScenarioConfig(seed=args.seed, approach=BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("R3", "L1", at=40.0)
    sc.run_until(90.0)
    d = sc.paper.router("D")
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        tunnels=[("Router D", f"R3 @ {sc.paper.host('R3').care_of_address}",
                  "HA->MH multicast tunnel")],
        title="Figure 3 — R3 via home-agent tunnel",
    ))
    print(f"tunneled datagrams: {d.tunneled_to_mobiles}  "
          f"on-behalf groups: {[str(g) for g in d.groups_on_behalf()]}")


def _fig4(args: argparse.Namespace) -> None:
    sc = PaperScenario(ScenarioConfig(seed=args.seed, approach=BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("S", "L6", at=40.0)
    sc.run_until(100.0)
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        tunnels=[(f"S @ {sc.paper.sender.care_of_address}", "Router A",
                  "MH->HA multicast tunnel")],
        title="Figure 4 — S via reverse tunnel (tree unchanged)",
    ))
    print(f"reverse-tunneled: {sc.paper.router('A').reverse_tunneled}")


def _table1(args: argparse.Namespace) -> None:
    print(render_table1())


def _compare(args: argparse.Namespace) -> None:
    report = run_full_comparison(seed=args.seed)
    print(report.render())
    sys.exit(0 if report.all_claims_hold else 1)


def _timers(args: argparse.Namespace) -> None:
    points = run_timer_sweep(
        query_intervals=tuple(args.intervals),
        seeds=tuple(range(args.repeats)),
    )
    print(render_sweep(points))


def _report(args: argparse.Namespace) -> None:
    text = generate_report(seed=args.seed)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)


def _scaling(args: argparse.Namespace) -> None:
    print(render_scaling(run_ha_load_vs_mobiles(counts=(1, 2, 4, 8)), "mobiles"))
    print()
    print(render_scaling(run_ha_load_vs_groups(counts=(1, 2, 4)), "groups"))


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "table1": _table1,
    "compare": _compare,
    "timers": _timers,
    "scaling": _scaling,
    "report": _report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Interoperation of Mobile "
        "IPv6 and PIM Dense Mode' (ICPP 2000).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, help_text in (
        ("fig1", "Figure 1: initial distribution tree"),
        ("fig2", "Figure 2: mobile receiver, local membership"),
        ("fig3", "Figure 3: mobile receiver via HA tunnel"),
        ("fig4", "Figure 4: mobile sender via HA tunnel"),
        ("table1", "Table 1: the four approaches"),
        ("compare", "full §4.3 comparison with claim checks"),
        ("scaling", "HA load scaling sweeps (§4.3.2)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0)
    report = sub.add_parser("report", help="run everything, emit a Markdown report")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", "-o", default=None)
    timers = sub.add_parser("timers", help="§4.4 MLD timer sweep")
    timers.add_argument("--seed", type=int, default=0)
    timers.add_argument("--intervals", type=float, nargs="+",
                        default=[10.0, 25.0, 60.0, 125.0])
    timers.add_argument("--repeats", type=int, default=3)
    return parser


def main(argv=None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("experiments:", ", ".join(COMMANDS))
        return
    COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    main()
