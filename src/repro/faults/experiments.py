"""Resilience experiments: the §4.3 comparison under injected faults.

Two canned studies on the Figure 1 network, both built from a
:class:`~repro.faults.plan.FaultPlan` + :class:`~repro.faults.inject.FaultInjector`
over the shared :class:`~repro.core.scenario.PaperScenario` harness:

* **wireless loss sweep** (:func:`loss_receiver_run`) — Receiver 3
  moves to Link 6 at t=40 while the link suffers Gilbert–Elliott burst
  loss (installed at t=32, before the handoff, so the join/Binding
  Update exchange itself is exposed).  The local-membership approach
  recovers via MLD Report retransmission (10 s unsolicited-report
  cadence) and PIM-DM Graft retries; the tunnel approaches recover via
  Binding Update retransmission (1 s cadence) — under loss the
  recovery machinery, not the steady state, separates the approaches.
* **home-agent crash** (:func:`ha_crash_run`) — Router D (Receiver 3's
  home agent) crashes at t=45 for 15 s.  D is *not* on the native
  delivery path to Link 6, so local membership rides through; the
  bi-directional tunnel loses its anchor and stays dark until a
  Binding Update retransmission lands after the restart.

Every run function takes plain JSON-able parameters and returns a flat
row dict, so both studies shard through :mod:`repro.campaign`
(tasks ``faults.receiver`` / ``faults.ha_crash``) with result caching
and byte-identical parallel execution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.tables import fmt_bytes, fmt_float, fmt_seconds, render_table
from ..campaign import CampaignCell, CampaignRunner
from ..core.scenario import PaperScenario, ScenarioConfig
from ..core.strategies import ALL_APPROACHES, Approach
from ..mipv6 import MobileIpv6Config
from .inject import FaultInjector
from .plan import FaultPlan, gilbert_loss, link_down, loss_burst, node_crash
from .resilience import (
    delivery_stats,
    duplicate_stats,
    expected_seqnos,
    longest_outage,
    recovery_time,
)

__all__ = [
    "loss_receiver_run",
    "ha_crash_run",
    "fault_sweep_cells",
    "crash_cells",
    "run_fault_sweep",
    "run_crash_study",
    "render_fault_table",
    "render_crash_table",
]

#: Mobile IPv6 tuning for the crash study: the default profile refreshes
#: every 128 s and gives up after 3 BU retransmissions — a 15 s home
#: agent outage would strand the binding until deep in the run.  Faster
#: refresh plus patient retransmission makes recovery observable (and is
#: what a deployment surviving HA failover would configure).
CRASH_MIPV6 = MobileIpv6Config(
    binding_refresh_interval=10.0,
    bu_retransmit_interval=2.0,
    bu_max_retransmits=12,
)


def _loss_plan(
    model: str,
    link: str,
    rate: float,
    at: float,
    blackout_at: float,
    blackout: float,
) -> FaultPlan:
    if rate <= 0.0:
        return FaultPlan()  # zero-fault: bit-identical to the plain run
    if model == "bernoulli":
        events = [loss_burst(at, link, rate=rate)]
    elif model == "gilbert":
        events = [gilbert_loss(at, link, rate=rate)]
    else:
        raise ValueError(f"unknown loss model {model!r} (bernoulli/gilbert)")
    if blackout > 0.0:
        # The handover lands in a deep fade: the radio link blacks out
        # across the join/Binding Update exchange, so recovery is paced
        # by each approach's retransmission machinery (MLD unsolicited
        # Report cadence vs. Binding Update retransmission).
        events.append(link_down(blackout_at, link, duration=blackout))
    return FaultPlan(*events)


def _window_metrics(
    sc: PaperScenario,
    app,
    disruption_at: float,
    window_end: float,
) -> Dict[str, Any]:
    """Shared resilience accounting over ``[disruption_at, window_end]``."""
    cfg = sc.config
    first, last = expected_seqnos(
        cfg.traffic_start,
        cfg.packet_interval,
        disruption_at,
        window_end,
        sc.source.sent,
    )
    row: Dict[str, Any] = {}
    row.update(delivery_stats(app, "S-flow", first, last))
    row["recovery_time"] = recovery_time(app, disruption_at)
    row.update(duplicate_stats(app, disruption_at, window_end))
    row["longest_outage"] = longest_outage(app, disruption_at, window_end)
    return row


def loss_receiver_run(
    approach: Approach,
    seed: int = 0,
    loss_rate: float = 0.02,
    model: str = "gilbert",
    move_link: str = "L6",
    move_at: float = 40.0,
    fault_at: float = 32.0,
    handoff_blackout: float = 2.0,
    run_until: float = 90.0,
    packet_interval: float = 0.05,
) -> Dict[str, Any]:
    """Receiver 3 hands off to a lossy ``move_link``; one table row.

    The loss model goes live at ``fault_at`` (before the move) and a
    ``handoff_blackout``-second radio outage covers the join signaling
    right after the handoff (the mobile arrives in a fade), so the
    first MLD Report / Binding Update is lost and recovery is paced by
    each approach's retransmission machinery.  The measurement window
    is ``[move_at, run_until]``.
    """
    sc = PaperScenario(
        ScenarioConfig(
            approach=approach, seed=seed, packet_interval=packet_interval
        )
    )
    # The join/BU exchange fires 1.6 s after the move (handoff 0.1 s +
    # movement detection 1.0 s + CoA configuration 0.5 s).
    plan = _loss_plan(
        model, move_link, loss_rate, fault_at, move_at + 1.5, handoff_blackout
    )
    injector = FaultInjector(sc.net, plan).arm()
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move("R3", move_link, at=move_at)
    sc.run_until(run_until)
    signaling = sc.metrics.snapshot().delta(before)

    app = sc.apps["R3"]
    row = {
        "scenario": "loss",
        "approach": approach.key,
        "title": approach.title,
        "loss_rate": loss_rate,
        "model": model,
        "seed": seed,
    }
    row.update(_window_metrics(sc, app, move_at, run_until))
    row["mld_bytes"] = signaling.total("mld")
    row["pim_bytes"] = signaling.total("pim")
    row["mipv6_bytes"] = signaling.total("mipv6")
    row["control_bytes"] = row["mld_bytes"] + row["pim_bytes"] + row["mipv6_bytes"]
    row["link_loss_drops"] = sc.net.stats.link_drops(move_link, "link-loss")
    row["frames_lost"] = sc.net.link(move_link).frames_lost
    row["faults_fired"] = injector.fired
    sc.finish()
    return row


def ha_crash_run(
    approach: Approach,
    seed: int = 0,
    move_link: str = "L6",
    move_at: float = 40.0,
    crash_at: float = 45.0,
    crash_duration: float = 15.0,
    run_until: float = 110.0,
    packet_interval: float = 0.05,
) -> Dict[str, Any]:
    """Receiver 3's home agent (Router D) crashes mid-session.

    R3 is already away on ``move_link`` when D goes down at
    ``crash_at``.  D serves Link 4 (R3's home) but is not on the native
    tree toward Link 6, so the approaches diverge sharply: local
    membership keeps delivering, tunnel approaches stall until the
    restarted D re-learns the binding from a BU retransmission.
    Measurement window: ``[crash_at, run_until]``.
    """
    sc = PaperScenario(
        ScenarioConfig(
            approach=approach,
            seed=seed,
            mipv6=CRASH_MIPV6,
            packet_interval=packet_interval,
        )
    )
    plan = FaultPlan(node_crash(crash_at, "D", duration=crash_duration))
    injector = FaultInjector(sc.net, plan).arm()
    sc.converge()
    sc.move("R3", move_link, at=move_at)
    sc.run_until(crash_at)
    before = sc.metrics.snapshot()
    sc.run_until(run_until)
    signaling = sc.metrics.snapshot().delta(before)

    app = sc.apps["R3"]
    ha = sc.paper.router("D")
    row = {
        "scenario": "ha-crash",
        "approach": approach.key,
        "title": approach.title,
        "crash_at": crash_at,
        "crash_duration": crash_duration,
        "seed": seed,
    }
    row.update(_window_metrics(sc, app, crash_at, run_until))
    row["mld_bytes"] = signaling.total("mld")
    row["pim_bytes"] = signaling.total("pim")
    row["mipv6_bytes"] = signaling.total("mipv6")
    row["control_bytes"] = row["mld_bytes"] + row["pim_bytes"] + row["mipv6_bytes"]
    row["binding_restored"] = (
        sc.paper.host("R3").home_address in ha.binding_cache
    )
    row["crash_drops"] = sc.net.stats.total_drops("node-crashed")
    row["faults_fired"] = injector.fired
    sc.finish()
    return row


# ----------------------------------------------------------------------
# campaign grids
# ----------------------------------------------------------------------

def fault_sweep_cells(
    loss_rates: Sequence[float],
    approaches: Sequence[Approach] = tuple(ALL_APPROACHES),
    seed: int = 0,
    model: str = "gilbert",
    run_until: float = 90.0,
    packet_interval: float = 0.05,
) -> List[CampaignCell]:
    """Loss-rate × approach grid of ``faults.receiver`` cells."""
    return [
        CampaignCell(
            "faults.receiver",
            {
                "approach": approach.key,
                "seed": seed,
                "loss_rate": rate,
                "model": model,
                "run_until": run_until,
                "packet_interval": packet_interval,
            },
        )
        for rate in loss_rates
        for approach in approaches
    ]


def crash_cells(
    approaches: Sequence[Approach] = tuple(ALL_APPROACHES),
    seed: int = 0,
    crash_at: float = 45.0,
    crash_duration: float = 15.0,
    run_until: float = 110.0,
    packet_interval: float = 0.05,
) -> List[CampaignCell]:
    """One ``faults.ha_crash`` cell per approach."""
    return [
        CampaignCell(
            "faults.ha_crash",
            {
                "approach": approach.key,
                "seed": seed,
                "crash_at": crash_at,
                "crash_duration": crash_duration,
                "run_until": run_until,
                "packet_interval": packet_interval,
            },
        )
        for approach in approaches
    ]


def run_fault_sweep(
    loss_rates: Sequence[float],
    approaches: Sequence[Approach] = tuple(ALL_APPROACHES),
    seed: int = 0,
    model: str = "gilbert",
    run_until: float = 90.0,
    packet_interval: float = 0.05,
    runner: Optional[CampaignRunner] = None,
) -> List[Dict[str, Any]]:
    """Run the loss sweep through the campaign engine; rows in grid order."""
    if runner is None:
        runner = CampaignRunner(master_seed=seed)
    cells = fault_sweep_cells(
        loss_rates, approaches, seed, model, run_until, packet_interval
    )
    return runner.run(cells).require_success().results()


def run_crash_study(
    approaches: Sequence[Approach] = tuple(ALL_APPROACHES),
    seed: int = 0,
    crash_at: float = 45.0,
    crash_duration: float = 15.0,
    run_until: float = 110.0,
    packet_interval: float = 0.05,
    runner: Optional[CampaignRunner] = None,
) -> List[Dict[str, Any]]:
    if runner is None:
        runner = CampaignRunner(master_seed=seed)
    cells = crash_cells(
        approaches, seed, crash_at, crash_duration, run_until, packet_interval
    )
    return runner.run(cells).require_success().results()


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def render_fault_table(rows: List[Dict[str, Any]]) -> str:
    return render_table(
        rows,
        [
            ("approach", "approach"),
            ("loss_rate", "loss", fmt_float(3)),
            ("model", "model"),
            ("recovery_time", "recovery", fmt_seconds),
            ("delivery_ratio", "delivered", fmt_float(3)),
            ("duplicate_ratio", "dup ratio", fmt_float(3)),
            ("longest_outage", "worst outage", fmt_seconds),
            ("control_bytes", "control", fmt_bytes),
            ("frames_lost", "frames lost"),
        ],
        title="Resilience under wireless loss (R3 hands off to L6)",
    )


def render_crash_table(rows: List[Dict[str, Any]]) -> str:
    return render_table(
        rows,
        [
            ("approach", "approach"),
            ("recovery_time", "recovery", fmt_seconds),
            ("delivery_ratio", "delivered", fmt_float(3)),
            ("longest_outage", "worst outage", fmt_seconds),
            ("control_bytes", "control", fmt_bytes),
            ("binding_restored", "binding back"),
            ("crash_drops", "frames at HA"),
        ],
        title="Home-agent crash (Router D down 15 s while R3 is away)",
    )
