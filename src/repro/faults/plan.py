"""Declarative fault plans.

A :class:`FaultPlan` is an ordered, validated list of
:class:`FaultEvent` records — plain data (JSON-able), so plans can ride
inside picklable campaign-cell parameters and hash into the result
cache.  The :class:`~repro.faults.inject.FaultInjector` schedules the
events on the simulator clock; all randomness (loss draws) comes from
the network's seeded RNG streams, so the same master seed and the same
plan reproduce the same run bit-for-bit.

Event kinds
===========

=================  ====================================================
``link-down``      administratively down: every frame dropped
``link-up``        restore the link
``loss-start``     install a loss model (``params["model"]``:
                   ``bernoulli`` or ``gilbert``; see
                   :func:`repro.net.loss.loss_model_from_jsonable`)
``loss-stop``      restore the loss model active before ``loss-start``
``node-crash``     drop all packets + cancel protocol timers
``node-restart``   cold protocol restart
``blackout``       a mobile host loses the radio for
                   ``params["duration"]`` s, then re-attaches
=================  ====================================================

Factory helpers (:func:`link_down`, :func:`loss_burst`,
:func:`gilbert_loss`, :func:`node_crash`, :func:`handover_blackout`)
build matched event groups — e.g. a crash with ``duration`` emits the
restart automatically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..net.loss import loss_model_from_jsonable

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "LINK_KINDS",
    "NODE_KINDS",
    "HOST_KINDS",
    "gilbert_loss",
    "handover_blackout",
    "link_down",
    "link_up",
    "loss_burst",
    "node_crash",
    "node_restart",
]

LINK_KINDS = frozenset({"link-down", "link-up", "loss-start", "loss-stop"})
NODE_KINDS = frozenset({"node-crash", "node-restart"})
HOST_KINDS = frozenset({"blackout"})
ALL_KINDS = LINK_KINDS | NODE_KINDS | HOST_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: apply ``kind`` to ``target`` at ``at``."""

    at: float
    kind: str
    target: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {sorted(ALL_KINDS)}"
            )
        if not self.target:
            raise ValueError("fault target must be a non-empty name")
        try:
            json.dumps(self.params, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"fault params must be JSON-able: {exc}") from exc
        if self.kind == "loss-start":
            # Fail at plan-construction time, not mid-simulation.
            loss_model_from_jsonable(self.params)
        if self.kind == "blackout":
            duration = self.params.get("duration")
            if not isinstance(duration, (int, float)) or duration <= 0:
                raise ValueError("blackout requires params['duration'] > 0")

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "kind": self.kind,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ValueError(
                f"fault event must be a mapping, got {type(data).__name__}: {data!r}"
            )
        missing = [k for k in ("at", "kind", "target") if k not in data]
        if missing:
            raise ValueError(
                f"fault event missing field(s) {missing}: {data!r}"
            )
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ValueError(
                f"fault event 'params' must be a mapping, got {params!r}"
            )
        return cls(
            at=data["at"],
            kind=data["kind"],
            target=data["target"],
            params=dict(params),
        )


class FaultPlan:
    """An immutable, time-sorted collection of fault events.

    Accepts events and/or iterables of events (the factory helpers
    return tuples), so plans compose naturally::

        plan = FaultPlan(
            loss_burst(32.0, "L6", rate=0.05),
            node_crash(45.0, "D", duration=15.0),
        )
    """

    def __init__(self, *items: Any) -> None:
        events: List[FaultEvent] = []
        for item in items:
            if isinstance(item, FaultEvent):
                events.append(item)
            elif isinstance(item, Iterable):
                for sub in item:
                    if not isinstance(sub, FaultEvent):
                        raise TypeError(f"not a FaultEvent: {sub!r}")
                    events.append(sub)
            else:
                raise TypeError(f"not a FaultEvent: {item!r}")
        # Stable sort: simultaneous events keep their plan order.
        # This is the normalization step — out-of-order construction is
        # legal, the plan itself is always time-ordered.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at)
        )
        self._validate_sequencing()

    def _validate_sequencing(self) -> None:
        """Reject incoherent event sequences per target.

        A second ``link-down`` on a link that is still down (no
        ``link-up`` in between) and a ``node-crash`` on a node that is
        still crashed are plan-construction errors: the injector would
        silently collapse them, making the plan's heal times lie.
        Nested ``loss-start`` events stay legal — the injector keeps a
        save/restore stack of loss models per link.
        """
        down_since: Dict[str, float] = {}
        crashed_since: Dict[str, float] = {}
        for event in self.events:
            if event.kind == "link-down":
                if event.target in down_since:
                    raise ValueError(
                        f"overlapping link-down on {event.target!r}: "
                        f"t={event.at} while already down since "
                        f"t={down_since[event.target]} "
                        "(insert a link-up between them)"
                    )
                down_since[event.target] = event.at
            elif event.kind == "link-up":
                down_since.pop(event.target, None)
            elif event.kind == "node-crash":
                if event.target in crashed_since:
                    raise ValueError(
                        f"overlapping node-crash on {event.target!r}: "
                        f"t={event.at} while already crashed since "
                        f"t={crashed_since[event.target]} "
                        "(insert a node-restart between them)"
                    )
                crashed_since[event.target] = event.at
            elif event.kind == "node-restart":
                crashed_since.pop(event.target, None)

    def unhealed(self) -> Dict[str, str]:
        """Faults left outstanding at the end of the plan.

        Maps target name to the fault kind still in effect
        (``link-down`` / ``node-crash`` / ``loss-start``).  Empty for a
        *healed* plan — the precondition for the convergence oracle's
        post-heal reference state to be well defined.
        """
        open_faults: Dict[str, str] = {}
        loss_depth: Dict[str, int] = {}
        for event in self.events:
            if event.kind in ("link-down", "node-crash"):
                open_faults[event.target] = event.kind
            elif event.kind in ("link-up", "node-restart"):
                open_faults.pop(event.target, None)
            elif event.kind == "loss-start":
                loss_depth[event.target] = loss_depth.get(event.target, 0) + 1
            elif event.kind == "loss-stop":
                loss_depth[event.target] = loss_depth.get(event.target, 0) - 1
        for target, depth in loss_depth.items():
            if depth > 0 and target not in open_faults:
                open_faults[target] = "loss-start"
        return open_faults

    def last_heal_time(self) -> float:
        """Time of the plan's last event (0.0 for an empty plan).

        For a healed plan (``unhealed()`` empty) this is the instant
        after which the network is fault-free; blackouts extend it by
        their duration since the re-attach happens ``duration`` after
        the event fires.
        """
        last = 0.0
        for event in self.events:
            at = event.at
            if event.kind == "blackout":
                at += float(event.params["duration"])
            last = max(last, at)
        return last

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def targets(self) -> List[str]:
        return sorted({e.target for e in self.events})

    def to_jsonable(self) -> List[Dict[str, Any]]:
        return [e.to_jsonable() for e in self.events]

    @classmethod
    def from_jsonable(cls, data: Optional[Iterable[Dict[str, Any]]]) -> "FaultPlan":
        if data is None:
            return cls()
        return cls([FaultEvent.from_jsonable(d) for d in data])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {len(self.events)} events on {self.targets()}>"


# ----------------------------------------------------------------------
# factory helpers
# ----------------------------------------------------------------------

def link_down(
    at: float, link: str, duration: Optional[float] = None
) -> Tuple[FaultEvent, ...]:
    """Take ``link`` down at ``at``; back up after ``duration`` (if set)."""
    events = [FaultEvent(at, "link-down", link)]
    if duration is not None:
        if duration <= 0:
            raise ValueError("link_down duration must be positive")
        events.append(FaultEvent(at + duration, "link-up", link))
    return tuple(events)


def link_up(at: float, link: str) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(at, "link-up", link),)


def loss_burst(
    at: float, link: str, rate: float, duration: Optional[float] = None
) -> Tuple[FaultEvent, ...]:
    """Bernoulli loss at ``rate`` on ``link`` from ``at`` (optionally
    bounded: the prior loss model is restored after ``duration``)."""
    events = [
        FaultEvent(at, "loss-start", link, {"model": "bernoulli", "rate": rate})
    ]
    if duration is not None:
        if duration <= 0:
            raise ValueError("loss_burst duration must be positive")
        events.append(FaultEvent(at + duration, "loss-stop", link))
    return tuple(events)


def gilbert_loss(
    at: float,
    link: str,
    rate: Optional[float] = None,
    duration: Optional[float] = None,
    p_good_to_bad: Optional[float] = None,
    p_bad_to_good: float = 0.25,
    loss_good: float = 0.0,
    loss_bad: float = 0.9,
) -> Tuple[FaultEvent, ...]:
    """Gilbert–Elliott burst loss on ``link``.

    Give either a target mean ``rate`` (the model is solved to match,
    see :func:`repro.net.loss.gilbert_for_mean_loss`) or the raw
    transition probability ``p_good_to_bad``.
    """
    params: Dict[str, Any] = {
        "model": "gilbert",
        "p_bad_to_good": p_bad_to_good,
        "loss_good": loss_good,
        "loss_bad": loss_bad,
    }
    if (rate is None) == (p_good_to_bad is None):
        raise ValueError("give exactly one of rate / p_good_to_bad")
    if rate is not None:
        params["rate"] = rate
    else:
        params["p_good_to_bad"] = p_good_to_bad
    events = [FaultEvent(at, "loss-start", link, params)]
    if duration is not None:
        if duration <= 0:
            raise ValueError("gilbert_loss duration must be positive")
        events.append(FaultEvent(at + duration, "loss-stop", link))
    return tuple(events)


def node_crash(
    at: float, node: str, duration: Optional[float] = None
) -> Tuple[FaultEvent, ...]:
    """Crash ``node`` at ``at``; cold-restart after ``duration`` (if set)."""
    events = [FaultEvent(at, "node-crash", node)]
    if duration is not None:
        if duration <= 0:
            raise ValueError("node_crash duration must be positive")
        events.append(FaultEvent(at + duration, "node-restart", node))
    return tuple(events)


def node_restart(at: float, node: str) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(at, "node-restart", node),)


def handover_blackout(at: float, host: str, duration: float) -> Tuple[FaultEvent, ...]:
    """Radio blackout: ``host`` detaches at ``at`` and re-attaches to the
    same link after ``duration`` via the normal handoff pipeline."""
    return (FaultEvent(at, "blackout", host, {"duration": duration}),)
