"""repro.faults — deterministic fault injection & resilience measurement.

Declarative :class:`FaultPlan` schedules (link outages, Gilbert–Elliott
loss bursts, node crash/restart, handover blackouts), a
:class:`FaultInjector` that drives a plan off the simulator clock while
emitting ``fault`` trace events, resilience metrics (recovery time,
delivery/duplicate ratios, outage, control overhead), and canned
experiments over the Figure 1 network that shard through
:mod:`repro.campaign`.
"""

from .inject import FaultInjector
from .plan import (
    FaultEvent,
    FaultPlan,
    gilbert_loss,
    handover_blackout,
    link_down,
    link_up,
    loss_burst,
    node_crash,
    node_restart,
)
from .resilience import (
    delivery_stats,
    duplicate_stats,
    expected_seqnos,
    longest_outage,
    publish_resilience,
    recovery_time,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "delivery_stats",
    "duplicate_stats",
    "expected_seqnos",
    "gilbert_loss",
    "handover_blackout",
    "link_down",
    "link_up",
    "longest_outage",
    "loss_burst",
    "node_crash",
    "node_restart",
    "publish_resilience",
    "recovery_time",
]
