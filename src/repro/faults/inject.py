"""The fault injector: drive a :class:`~repro.faults.plan.FaultPlan`
off the simulator clock.

:meth:`FaultInjector.arm` validates every event against the topology
(links exist, nodes support crash/restart, blackout targets are mobile)
and schedules one simulator event per fault.  Each applied fault emits
a ``fault`` trace event through the network's :class:`~repro.sim.Tracer`
(``event=<kind>`` plus the fault's params), so resilience analysis can
locate disruption windows in the same trace the protocol events live
in.

``loss-start`` saves the link's previous loss model on a per-link
stack; ``loss-stop`` restores it — nested bursts unwind correctly.
"""

from __future__ import annotations

from typing import Dict, List

from ..net.loss import loss_model_from_jsonable
from ..net.topology import Network
from .plan import HOST_KINDS, LINK_KINDS, NODE_KINDS, FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and applies a fault plan on one network."""

    def __init__(self, net: Network, plan: FaultPlan) -> None:
        self.net = net
        self.plan = plan
        self.fired = 0
        self._armed = False
        #: per-link stack of loss models shadowed by ``loss-start``
        self._saved_models: Dict[str, List[object]] = {}

    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Validate the plan against the topology and schedule it."""
        if self._armed:
            raise RuntimeError("injector already armed")
        for event in self.plan.events:
            self._validate(event)
        self._armed = True
        for event in self.plan.events:
            self.net.sim.schedule_at(
                event.at, self._fire, event, label="fault.inject"
            )
        return self

    def _validate(self, event: FaultEvent) -> None:
        if event.kind in LINK_KINDS:
            if event.target not in self.net.links:
                raise ValueError(
                    f"fault {event.kind!r} targets unknown link {event.target!r}"
                )
        elif event.kind in NODE_KINDS:
            node = self.net.nodes.get(event.target)
            if node is None:
                raise ValueError(
                    f"fault {event.kind!r} targets unknown node {event.target!r}"
                )
            if not hasattr(node, "crash") or not hasattr(node, "restart"):
                raise ValueError(f"node {event.target!r} cannot crash/restart")
        elif event.kind in HOST_KINDS:
            node = self.net.nodes.get(event.target)
            if node is None or not hasattr(node, "blackout"):
                raise ValueError(
                    f"blackout targets non-mobile node {event.target!r}"
                )

    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        self.fired += 1
        if event.kind == "link-down":
            self.net.links[event.target].set_down()
        elif event.kind == "link-up":
            self.net.links[event.target].set_up()
        elif event.kind == "loss-start":
            link = self.net.links[event.target]
            self._saved_models.setdefault(event.target, []).append(
                link.loss_model
            )
            link.set_loss_model(loss_model_from_jsonable(event.params))
        elif event.kind == "loss-stop":
            link = self.net.links[event.target]
            stack = self._saved_models.get(event.target, [])
            link.set_loss_model(stack.pop() if stack else None)
        elif event.kind == "node-crash":
            self.net.nodes[event.target].crash()
        elif event.kind == "node-restart":
            self.net.nodes[event.target].restart()
        elif event.kind == "blackout":
            self.net.nodes[event.target].blackout(event.params["duration"])
        self.net.tracer.record(
            "fault", event.target, event=event.kind, **dict(event.params)
        )
