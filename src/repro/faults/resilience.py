"""Resilience metrics: how the four approaches recover from faults.

Computed from receiver-side instrumentation
(:class:`~repro.workloads.apps.ReceiverApp`) and link accounting
(:class:`~repro.net.stats.NetworkStats` — drop counters make delivery
ratios computable without a tracer attached):

* **recovery time** — disruption start to the first subsequent
  delivery (the fault-injection analogue of the paper's join delay),
* **delivery ratio** — unique datagrams delivered over datagrams the
  CBR source emitted inside the measurement window (expected sequence
  numbers are arithmetic: seqno *k* leaves the source at
  ``traffic_start + k * packet_interval``),
* **duplicate ratio** — tunnel-plus-on-link double delivery under
  impairment (§4.3.2's redundancy observation),
* **longest outage** — the widest delivery gap in the window (a crash
  of the home agent stalls tunnel approaches for the crash duration
  plus the binding-refresh lag; the local approach rides through),
* **control overhead** — signaling bytes (MLD + PIM + Mobile IPv6)
  spent during the window, i.e. what loss-triggered retransmission
  machinery costs.

:func:`publish_resilience` surfaces rows as ``repro_resilience_*``
gauges on a metrics registry (duck-typed, any
:class:`repro.obs.MetricsRegistry`-shaped object).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "delivery_stats",
    "duplicate_stats",
    "expected_seqnos",
    "longest_outage",
    "publish_resilience",
    "recovery_time",
]


def expected_seqnos(
    traffic_start: float,
    packet_interval: float,
    window_start: float,
    window_end: float,
    total_sent: int,
) -> Tuple[int, int]:
    """Inclusive ``(first_seq, last_seq)`` emitted inside the window.

    Returns ``(0, -1)`` (empty) when the window contains no send times.
    Pure arithmetic from the CBR schedule — no tracer needed.
    """
    if packet_interval <= 0:
        raise ValueError("packet_interval must be positive")
    eps = packet_interval * 1e-9
    first = max(0, math.ceil((window_start - traffic_start - eps) / packet_interval))
    last = min(
        total_sent - 1,
        math.floor((window_end - traffic_start + eps) / packet_interval),
    )
    if last < first:
        return (0, -1)
    return (int(first), int(last))


def delivery_stats(
    app, flow: str, first_seq: int, last_seq: int
) -> Dict[str, Any]:
    """Unique-delivery accounting over ``[first_seq, last_seq]``."""
    expected = max(0, last_seq - first_seq + 1)
    if expected == 0:
        return {"expected": 0, "delivered": 0, "lost": 0, "delivery_ratio": None}
    got = set(app.delivered_seqnos(flow))
    delivered = sum(1 for s in range(first_seq, last_seq + 1) if s in got)
    return {
        "expected": expected,
        "delivered": delivered,
        "lost": expected - delivered,
        "delivery_ratio": delivered / expected,
    }


def recovery_time(app, disruption_at: float) -> Optional[float]:
    """Disruption start -> first delivery at/after it (None: never)."""
    return app.join_delay(disruption_at)


def duplicate_stats(app, window_start: float, window_end: float) -> Dict[str, Any]:
    deliveries = app.deliveries_between(window_start, window_end)
    total = len(deliveries)
    duplicates = sum(1 for d in deliveries if d.duplicate)
    return {
        "deliveries": total,
        "duplicates": duplicates,
        "duplicate_ratio": (duplicates / total) if total else 0.0,
    }


def longest_outage(app, window_start: float, window_end: float) -> float:
    """Widest delivery gap within the window (whole window if silent)."""
    times = sorted(
        d.time for d in app.deliveries_between(window_start, window_end)
    )
    if not times:
        return window_end - window_start
    edges = [window_start] + times + [window_end]
    return max(b - a for a, b in zip(edges, edges[1:]))


def publish_resilience(registry, rows: List[Dict[str, Any]]) -> None:
    """Export resilience rows as labelled gauges (idempotent)."""
    gauges = {
        "recovery_time": registry.gauge(
            "repro_resilience_recovery_seconds",
            "Disruption start to first subsequent delivery",
            ("approach", "scenario"),
        ),
        "delivery_ratio": registry.gauge(
            "repro_resilience_delivery_ratio",
            "Unique deliveries / datagrams sent in the window",
            ("approach", "scenario"),
        ),
        "duplicate_ratio": registry.gauge(
            "repro_resilience_duplicate_ratio",
            "Duplicate deliveries / total deliveries in the window",
            ("approach", "scenario"),
        ),
        "control_bytes": registry.gauge(
            "repro_resilience_control_bytes",
            "Signaling bytes spent during the measurement window",
            ("approach", "scenario"),
        ),
        "longest_outage": registry.gauge(
            "repro_resilience_outage_seconds",
            "Longest delivery gap in the measurement window",
            ("approach", "scenario"),
        ),
    }
    for row in rows:
        labels = {
            "approach": str(row.get("approach", "?")),
            "scenario": str(row.get("scenario", "?")),
        }
        for key, gauge in gauges.items():
            value = row.get(key)
            if value is not None:
                gauge.labels(**labels).set(float(value))
