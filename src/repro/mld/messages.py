"""MLD message types (RFC 2710 §3).

All three MLD message types share one ICMPv6 format: Type, Code,
Checksum, Maximum Response Delay, Reserved, Multicast Address —
8 + 16 = 24 bytes of ICMPv6 payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.addressing import Address
from ..net.messages import Message

__all__ = ["MldMessage", "MldQuery", "MldReport", "MldDone", "MLD_MESSAGE_BYTES"]

#: ICMPv6 MLD message body size (RFC 2710 §3).
MLD_MESSAGE_BYTES = 24


class MldMessage(Message):
    """Common base for the three MLD message types."""

    protocol = "mld"

    @property
    def size_bytes(self) -> int:
        return MLD_MESSAGE_BYTES


@dataclass(frozen=True)
class MldQuery(MldMessage):
    """Multicast Listener Query.

    ``group`` is None for a General Query (sent to ff02::1) and the
    queried address for a Multicast-Address-Specific Query.
    ``max_response_delay`` is in seconds (the wire field is ms).
    """

    group: Optional[Address] = None
    max_response_delay: float = 10.0

    @property
    def is_general(self) -> bool:
        return self.group is None

    def describe(self) -> str:
        kind = "general" if self.is_general else f"specific({self.group})"
        return f"MLD-Query[{kind}]"


@dataclass(frozen=True)
class MldReport(MldMessage):
    """Multicast Listener Report for one group (sent to the group)."""

    group: Address

    def describe(self) -> str:
        return f"MLD-Report[{self.group}]"


@dataclass(frozen=True)
class MldDone(MldMessage):
    """Multicast Listener Done (sent to ff02::2, link-scope all-routers).

    The paper notes (§4.4) that mobile hosts *cannot* send Done when
    they leave a link — they are already gone — which is exactly why the
    leave delay is bounded only by T_MLI.
    """

    group: Address

    def describe(self) -> str:
        return f"MLD-Done[{self.group}]"
