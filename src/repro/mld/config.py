"""MLD protocol timer configuration (RFC 2710 §7).

The paper's Section 4.4 proposal is precisely a re-tuning of these
values: decrease the Query Interval (bounded below by the Maximum
Response Delay, footnote 5) to cut the join and leave delay experienced
by mobile receivers.  Every constant is therefore configurable, with the
RFC defaults the paper quotes:

* Query Interval T_Query = 125 s,
* Maximum Response Delay T_RespDel = 10 s,
* Multicast Listener Interval T_MLI = Robustness · T_Query + T_RespDel
  = 260 s with the defaults (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MldConfig"]


@dataclass(frozen=True)
class MldConfig:
    """Tunable MLD timers; defaults are the RFC 2710 values."""

    #: Robustness Variable — packet-loss tolerance factor.
    robustness: int = 2
    #: Query Interval T_Query (s): gap between General Queries.
    query_interval: float = 125.0
    #: Maximum Response Delay T_RespDel (s) advertised in Queries.
    query_response_interval: float = 10.0
    #: Interval between the Startup Queries a fresh querier sends.
    startup_query_interval: float = 125.0 / 4
    #: Number of Startup Queries.
    startup_query_count: int = 2
    #: Max Response Delay for Multicast-Address-Specific Queries (s).
    last_listener_query_interval: float = 1.0
    #: Number of specific queries sent on Done.
    last_listener_query_count: int = 2
    #: Gap between repeated unsolicited Reports on join (s).
    unsolicited_report_interval: float = 10.0
    #: How many unsolicited Reports a joining host transmits.
    unsolicited_report_count: int = 2
    #: Paper §4.3.1/§4.4 recommendation: mobile hosts re-send
    #: unsolicited Reports immediately after moving to a new link.
    unsolicited_reports_on_move: bool = True
    #: RFC 2710 §4 refinement: send Done on leave only when this host
    #: was the last one to report the group on the link (another
    #: member's Report means routers still know about listeners).
    done_only_if_last_reporter: bool = False

    def __post_init__(self) -> None:
        if self.query_interval <= 0:
            raise ValueError("query_interval must be positive")
        if self.query_response_interval <= 0:
            raise ValueError("query_response_interval must be positive")
        if self.query_interval < self.query_response_interval:
            # Footnote 5 of the paper: T_Query must not be smaller than
            # the Maximum Response Delay T_RespDel.
            raise ValueError(
                "query_interval must be >= query_response_interval "
                f"({self.query_interval} < {self.query_response_interval})"
            )
        if self.robustness < 1:
            raise ValueError("robustness must be >= 1")

    # ------------------------------------------------------------------
    @property
    def multicast_listener_interval(self) -> float:
        """T_MLI = Robustness · T_Query + T_RespDel (260 s by default)."""
        return self.robustness * self.query_interval + self.query_response_interval

    @property
    def other_querier_present_interval(self) -> float:
        """Robustness · T_Query + T_RespDel / 2 (RFC 2710 §7.5)."""
        return self.robustness * self.query_interval + self.query_response_interval / 2

    def with_query_interval(self, query_interval: float) -> "MldConfig":
        """Derive a tuned configuration (the §4.4 optimization knob)."""
        return replace(
            self,
            query_interval=query_interval,
            startup_query_interval=query_interval / 4,
        )
