"""MLD router part (RFC 2710 §4, router behaviour).

Implements the router side of MLD on every interface of a multicast
router:

* querier election (lowest address on the link wins; a router that
  hears a Query from a lower address becomes a non-querier until the
  Other-Querier-Present interval lapses),
* periodic General Queries every T_Query (startup: a burst at
  T_Query/4), the knob Section 4.4 tunes,
* per-(interface, group) membership state refreshed by Reports and
  expired after the Multicast Listener Interval
  T_MLI = Robustness · T_Query + T_RespDel — the paper's *leave delay*
  bound of 260 s,
* Done processing: Last-Listener Queries and fast expiry,
* static memberships: local joins by the router itself (a home agent
  subscribing on behalf of its mobile nodes) that never expire,
* change notifications to the multicast routing protocol (PIM-DM), as
  required by RFC 2710 §5 and paper §3.2.

The ``members-gone`` event a membership expiry emits closes the
``leave-window`` span opened at the mobile node's departure — the
§4.3 leave delay as a transaction (:mod:`repro.obs.spans` correlates
it by the ``link``/``group`` detail fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..net.addressing import ALL_NODES, Address
from ..net.interface import Interface
from ..net.node import Node
from ..net.packet import Ipv6Packet
from ..sim import PeriodicTimer, Timer
from .config import MldConfig
from .messages import MldDone, MldQuery, MldReport

__all__ = ["MldRouter"]

#: listener signature: (iface, group, present)
MembershipListener = Callable[[Interface, Address, bool], None]


@dataclass
class _IfaceState:
    iface: Interface
    querier: bool = True
    query_timer: Optional[PeriodicTimer] = None
    other_querier_timer: Optional[Timer] = None
    startup_queries_left: int = 0
    queries_sent: int = 0


@dataclass
class _Membership:
    iface: Interface
    group: Address
    timer: Optional[Timer] = None
    static_refcount: int = 0
    reported: bool = False

    @property
    def active(self) -> bool:
        return self.static_refcount > 0 or (
            self.timer is not None and self.timer.running
        )


class MldRouter:
    """Router-side MLD engine for one multicast router."""

    def __init__(self, node: Node, config: Optional[MldConfig] = None) -> None:
        self.node = node
        self.config = config or MldConfig()
        self._ifaces: Dict[int, _IfaceState] = {}
        self._memberships: Dict[Tuple[int, int], _Membership] = {}
        self._listeners: List[MembershipListener] = []
        node.register_message_handler(MldReport, self._on_report)
        node.register_message_handler(MldDone, self._on_done)
        node.register_message_handler(MldQuery, self._on_query_heard)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Assume querier duty on all currently attached interfaces."""
        for iface in self.node.interfaces:
            if iface.attached:
                self.manage_interface(iface)

    def shutdown(self) -> None:
        """Crash support: stop every timer and discard all querier and
        membership state, so a subsequent :meth:`start` is a cold boot.
        No Done/notification signaling — a crashed router is silent."""
        for state in self._ifaces.values():
            if state.query_timer is not None:
                state.query_timer.stop()
            if state.other_querier_timer is not None:
                state.other_querier_timer.stop()
        self._ifaces.clear()
        for record in self._memberships.values():
            if record.timer is not None:
                record.timer.stop()
        self._memberships.clear()

    def manage_interface(self, iface: Interface) -> None:
        if iface.uid in self._ifaces:
            return
        state = _IfaceState(iface=iface)
        state.startup_queries_left = self.config.startup_query_count
        state.query_timer = PeriodicTimer(
            self.node.sim,
            lambda s=state: self._query_tick(s),
            period=self.config.startup_query_interval,
            name=f"{self.node.name}.mld.query.{iface.name}",
        )
        self._ifaces[iface.uid] = state
        state.query_timer.start(fire_immediately=True)

    def on_membership_change(self, listener: MembershipListener) -> None:
        """Subscribe the multicast routing protocol to add/delete events."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # queries (querier duties)
    # ------------------------------------------------------------------
    def _query_tick(self, state: _IfaceState) -> None:
        if not state.querier or not state.iface.attached:
            return
        self._send_query(state.iface, group=None)
        state.queries_sent += 1
        if state.startup_queries_left > 0:
            state.startup_queries_left -= 1
            if state.startup_queries_left == 0:
                state.query_timer.set_period(self.config.query_interval)

    def _send_query(self, iface: Interface, group: Optional[Address]) -> None:
        src = self._address_on(iface)
        if src is None:
            return
        mrd = (
            self.config.query_response_interval
            if group is None
            else self.config.last_listener_query_interval
        )
        dst = ALL_NODES if group is None else group
        packet = Ipv6Packet(src, dst, MldQuery(group, mrd), hop_limit=1)
        self.node.send_on(iface, packet)
        self.node.trace(
            "mld",
            event="query-sent",
            iface=iface.name,
            general=group is None,
            group=str(group) if group else None,
        )

    def _on_query_heard(
        self, packet: Ipv6Packet, query: MldQuery, iface: Interface
    ) -> None:
        state = self._ifaces.get(iface.uid)
        if state is None:
            return
        ours = self._address_on(iface)
        if ours is None or packet.src >= ours:
            return  # we win (or tie); stay querier
        # Lower-addressed querier present: stand down (RFC 2710 §6).
        if state.querier:
            state.querier = False
            self.node.trace("mld", event="querier-standdown", iface=iface.name)
        if state.other_querier_timer is None:
            state.other_querier_timer = Timer(
                self.node.sim,
                lambda s=state: self._resume_querier(s),
                name=f"{self.node.name}.mld.otherq.{iface.name}",
            )
        state.other_querier_timer.start(self.config.other_querier_present_interval)

    def _resume_querier(self, state: _IfaceState) -> None:
        state.querier = True
        self.node.trace("mld", event="querier-resume", iface=state.iface.name)

    def is_querier(self, iface: Interface) -> bool:
        state = self._ifaces.get(iface.uid)
        return state is not None and state.querier

    # ------------------------------------------------------------------
    # membership learning
    # ------------------------------------------------------------------
    def _on_report(
        self, packet: Ipv6Packet, report: MldReport, iface: Interface
    ) -> None:
        if iface.uid not in self._ifaces:
            return
        if report.group.is_link_scope_multicast:
            return
        record = self._record_for(iface, report.group)
        fresh = not record.active
        if record.timer is None:
            record.timer = Timer(
                self.node.sim,
                lambda r=record: self._membership_expired(r),
                name=f"{self.node.name}.mld.mli.{iface.name}.{report.group}",
            )
        record.timer.start(self.config.multicast_listener_interval)
        record.reported = True
        if fresh:
            self.node.trace(
                "mld", event="members-detected", iface=iface.name, link=iface.link.name if iface.link else None, group=str(report.group)
            )
            self._notify(iface, report.group, True)

    def _on_done(self, packet: Ipv6Packet, done: MldDone, iface: Interface) -> None:
        state = self._ifaces.get(iface.uid)
        if state is None:
            return
        key = (iface.uid, done.group.as_int())
        record = self._memberships.get(key)
        if record is None or record.timer is None or not record.timer.running:
            return
        # Lower the membership timer to LLQC * LLQI and (querier only)
        # probe with Multicast-Address-Specific Queries.
        llq_window = (
            self.config.last_listener_query_count
            * self.config.last_listener_query_interval
        )
        record.timer.start(llq_window)
        if state.querier:
            for k in range(self.config.last_listener_query_count):
                self.node.sim.schedule(
                    k * self.config.last_listener_query_interval,
                    self._send_query,
                    iface,
                    done.group,
                    label=f"{self.node.name}.mld.llq",
                )

    def _membership_expired(self, record: _Membership) -> None:
        record.timer = None
        if record.static_refcount > 0:
            return  # still held by a local (static) join
        self.node.trace(
            "mld",
            event="members-gone",
            iface=record.iface.name,
            link=record.iface.link.name if record.iface.link else None,
            group=str(record.group),
        )
        self._drop_record(record)
        self._notify(record.iface, record.group, False)

    # ------------------------------------------------------------------
    # static (local) memberships
    # ------------------------------------------------------------------
    def add_static_membership(self, iface: Interface, group: Address) -> None:
        """Register a local join by this router itself (e.g. a home agent
        subscribing on behalf of a mobile node, paper §4.3.2)."""
        group = Address(group)
        record = self._record_for(iface, group)
        fresh = not record.active
        record.static_refcount += 1
        if fresh:
            self.node.trace(
                "mld", event="static-join", iface=iface.name, link=iface.link.name if iface.link else None, group=str(group)
            )
            self._notify(iface, group, True)

    def remove_static_membership(self, iface: Interface, group: Address) -> None:
        group = Address(group)
        key = (iface.uid, group.as_int())
        record = self._memberships.get(key)
        if record is None or record.static_refcount == 0:
            return
        record.static_refcount -= 1
        if not record.active:
            self.node.trace(
                "mld", event="static-leave", iface=iface.name, link=iface.link.name if iface.link else None, group=str(group)
            )
            self._drop_record(record)
            self._notify(iface, group, False)

    # ------------------------------------------------------------------
    # queries from the routing protocol
    # ------------------------------------------------------------------
    def has_members(self, iface: Interface, group: Address) -> bool:
        record = self._memberships.get((iface.uid, Address(group).as_int()))
        return record is not None and record.active

    def groups_on(self, iface: Interface) -> Set[Address]:
        return {
            r.group
            for (iface_uid, _), r in self._memberships.items()
            if iface_uid == iface.uid and r.active
        }

    def membership_count(self) -> int:
        """Number of live (iface, group) membership records — the MLD
        contribution to the topology state gauges."""
        return len(self._memberships)

    def membership_expiry(self, iface: Interface, group: Address) -> Optional[float]:
        """Absolute time the membership would expire (None if static/absent)."""
        record = self._memberships.get((iface.uid, Address(group).as_int()))
        if record is None or record.timer is None:
            return None
        return record.timer.expires_at

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record_for(self, iface: Interface, group: Address) -> _Membership:
        key = (iface.uid, group.as_int())
        record = self._memberships.get(key)
        if record is None:
            record = _Membership(iface=iface, group=group)
            self._memberships[key] = record
        return record

    def _drop_record(self, record: _Membership) -> None:
        if record.timer is not None:
            record.timer.stop()
        self._memberships.pop((record.iface.uid, record.group.as_int()), None)

    def _notify(self, iface: Interface, group: Address, present: bool) -> None:
        for listener in self._listeners:
            listener(iface, group, present)

    def _address_on(self, iface: Interface) -> Optional[Address]:
        for addr in iface.addresses:
            if not addr.is_multicast:
                return addr
        return None
