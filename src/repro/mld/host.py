"""MLD host part (RFC 2710 §4, host behaviour).

Implements the listener side of MLD:

* respond to General / Address-Specific Queries after a random delay
  drawn uniformly from [0, Maximum Response Delay],
* suppress a pending response when another listener's Report for the
  same group is overheard on the link,
* send unsolicited Reports when joining a group (and — the paper's
  recommendation, §4.3.1 — again immediately after moving to a new
  link),
* send Done on an explicit leave (not on movement: a host that left the
  link cannot transmit on it, paper §4.4).

The component binds to any :class:`~repro.net.node.Node`; mobile hosts
and plain hosts use it directly, and home agents attach one to answer
queries for the groups they joined on behalf of their mobile nodes.

A ``report-sent`` event emitted while the node's handover transaction
is open becomes an ``mld-report`` marker span inside it — the visible
start of the §4.3 rejoin signaling (:mod:`repro.obs.spans`).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..net.addressing import ALL_ROUTERS, Address
from ..net.interface import Interface
from ..net.node import Host, Node
from ..net.packet import Ipv6Packet
from ..sim import Timer
from .config import MldConfig
from .messages import MldDone, MldQuery, MldReport

__all__ = ["MldHost"]


class MldHost:
    """Host-side MLD state machine for one node."""

    def __init__(
        self,
        node: Node,
        config: Optional[MldConfig] = None,
        iface: Optional[Interface] = None,
    ) -> None:
        self.node = node
        self.config = config or MldConfig()
        self._pinned_iface = iface
        self.groups: Set[Address] = set()
        self._response_timers: Dict[Address, Timer] = {}
        #: groups whose most recent Report on the link was ours
        self._last_reporter: Set[Address] = set()
        self._rng = node.rng.stream(f"mld.host.{node.name}")
        node.register_message_handler(MldQuery, self._on_query)
        node.register_message_handler(MldReport, self._on_report_heard)

    # ------------------------------------------------------------------
    def iface(self) -> Optional[Interface]:
        """The interface MLD signaling uses (first attached by default)."""
        if self._pinned_iface is not None:
            return self._pinned_iface if self._pinned_iface.attached else None
        return next((i for i in self.node.interfaces if i.attached), None)

    def _source_address(self, iface: Interface) -> Optional[Address]:
        for addr in iface.addresses:
            if not addr.is_multicast:
                return addr
        return None

    # ------------------------------------------------------------------
    # membership API
    # ------------------------------------------------------------------
    def join(self, group: Address, send_unsolicited: bool = True) -> None:
        """Join ``group``; optionally announce with unsolicited Reports."""
        group = Address(group)
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group")
        self.groups.add(group)
        if isinstance(self.node, Host):
            self.node.joined_groups.add(group)
        self.node.trace("mld", event="join", group=str(group))
        if send_unsolicited:
            self._send_unsolicited_burst(group)

    def leave(self, group: Address, send_done: bool = True) -> None:
        """Leave ``group``; optionally signal Done to the routers."""
        group = Address(group)
        self.groups.discard(group)
        if isinstance(self.node, Host):
            self.node.joined_groups.discard(group)
        self._cancel_timer(group)
        self.node.trace("mld", event="leave", group=str(group))
        if self.config.done_only_if_last_reporter and group not in self._last_reporter:
            send_done = False  # someone else reported last (RFC 2710 §4)
        self._last_reporter.discard(group)
        iface = self.iface()
        if send_done and iface is not None:
            src = self._source_address(iface)
            if src is not None:
                packet = Ipv6Packet(src, ALL_ROUTERS, MldDone(group), hop_limit=1)
                self.node.send_on(iface, packet)
                self.node.trace("mld", event="done-sent", group=str(group))

    def suspend(self) -> None:
        """Silently drop all link-local membership state (no Done sent).

        Used by mobile hosts switching to home-agent-tunnel reception:
        while away they must not answer Queries on the foreign link for
        groups they receive through the tunnel.
        """
        for timer in self._response_timers.values():
            timer.stop()
        self._response_timers.clear()
        if isinstance(self.node, Host):
            self.node.joined_groups -= set(self.groups)
        self.groups.clear()

    def after_move(self) -> None:
        """Re-announce memberships after attaching to a new link.

        Implements the paper's recommendation: "mobile hosts should send
        unsolicited REPORTS after moving to a new link" (§4.3.1).  When
        disabled in the config, the host instead waits for the next
        Query — the slow path whose delay Section 4.4 quantifies.
        """
        for timer in self._response_timers.values():
            timer.stop()
        self._response_timers.clear()
        if self.config.unsolicited_reports_on_move:
            for group in sorted(self.groups):
                self._send_unsolicited_burst(group)

    # ------------------------------------------------------------------
    # protocol handlers
    # ------------------------------------------------------------------
    def _on_query(self, packet: Ipv6Packet, query: MldQuery, iface: Interface) -> None:
        my_iface = self.iface()
        if my_iface is None or iface is not my_iface:
            return
        targets = (
            sorted(self.groups)
            if query.is_general
            else ([query.group] if query.group in self.groups else [])
        )
        for group in targets:
            delay = self._rng.uniform(0.0, query.max_response_delay)
            self._arm_timer(group, delay)

    def _on_report_heard(
        self, packet: Ipv6Packet, report: MldReport, iface: Interface
    ) -> None:
        # Another listener answered for this group: suppress our response.
        if report.group in self.groups and packet.src not in [
            a for i in self.node.interfaces for a in i.addresses
        ]:
            self._last_reporter.discard(report.group)
            timer = self._response_timers.get(report.group)
            if timer is not None and timer.running:
                timer.stop()
                self.node.trace("mld", event="suppressed", group=str(report.group))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _arm_timer(self, group: Address, delay: float) -> None:
        timer = self._response_timers.get(group)
        if timer is None:
            timer = Timer(
                self.node.sim,
                lambda g=group: self._respond(g),
                name=f"{self.node.name}.mld.resp.{group}",
            )
            self._response_timers[group] = timer
        if timer.running and timer.remaining is not None and timer.remaining <= delay:
            return  # keep the earlier deadline (RFC 2710 §4 rule 2)
        timer.start(delay)

    def _cancel_timer(self, group: Address) -> None:
        timer = self._response_timers.pop(group, None)
        if timer is not None:
            timer.stop()

    def _respond(self, group: Address) -> None:
        if group in self.groups:
            self._send_report(group)

    def _send_report(self, group: Address) -> bool:
        iface = self.iface()
        if iface is None:
            return False
        src = self._source_address(iface)
        if src is None:
            return False
        packet = Ipv6Packet(src, group, MldReport(group), hop_limit=1)
        self.node.send_on(iface, packet)
        self._last_reporter.add(group)
        self.node.trace("mld", event="report-sent", group=str(group))
        return True

    def _send_unsolicited_burst(self, group: Address) -> None:
        """Robustness-many unsolicited Reports, first one immediately."""
        self._send_report(group)
        for k in range(1, self.config.unsolicited_report_count):
            self.node.sim.schedule(
                k * self.config.unsolicited_report_interval,
                self._resend_unsolicited,
                group,
                label=f"{self.node.name}.mld.unsol.{group}",
            )

    def _resend_unsolicited(self, group: Address) -> None:
        if group in self.groups:
            self._send_report(group)
