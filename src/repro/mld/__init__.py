"""Multicast Listener Discovery (RFC 2710): host and router parts."""

from .config import MldConfig
from .host import MldHost
from .messages import MLD_MESSAGE_BYTES, MldDone, MldMessage, MldQuery, MldReport
from .router import MldRouter

__all__ = [
    "MLD_MESSAGE_BYTES",
    "MldConfig",
    "MldDone",
    "MldHost",
    "MldMessage",
    "MldQuery",
    "MldReport",
    "MldRouter",
]
