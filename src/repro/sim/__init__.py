"""Discrete-event simulation kernel: scheduler, timers, RNG, tracing."""

from .kernel import Event, SimulationError, Simulator
from .rng import RngRegistry, derive_seed
from .timers import PeriodicTimer, Timer
from .trace import TraceEvent, Tracer

__all__ = [
    "Event",
    "PeriodicTimer",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Timer",
    "TraceEvent",
    "Tracer",
    "derive_seed",
]
