"""Spatially sharded simulation: conservative multi-kernel execution.

* :mod:`repro.sim.shard.partition` — deterministic region split of a
  :class:`~repro.net.topogen.TopoGraph` and the link-delay lookahead
  bound,
* :mod:`repro.sim.shard.kernel` — :class:`ShardedSimulator`, the
  barrier-round LBTS coordinator with the ``run/step/now/schedule``
  surface of a plain :class:`~repro.sim.Simulator`,
* :mod:`repro.sim.shard.netrunner` — full-replica execution of EXP-S1
  scale cells, in-process or one worker process per shard (imported
  lazily: it pulls in the net layer).
"""

from .kernel import ShardedSimulator
from .partition import Partition, partition_graph

__all__ = ["Partition", "ShardedSimulator", "partition_graph"]
