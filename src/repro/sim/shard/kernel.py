"""Conservative synchronized multi-simulator kernel (LBTS windows).

:class:`ShardedSimulator` coordinates N :class:`~repro.sim.kernel.
Simulator` instances — one per spatial region — with the classic
conservative (null-message/LBTS-style) algorithm, specialized to a
**barrier-round** form:

1. at a barrier, exchange all buffered cross-shard messages and compute
   ``T`` = the minimum next-event time across shards (the lower bound
   on time stamp, LBTS),
2. grant every shard the window ``[T, T + lookahead)``: each shard
   dispatches **all** its events strictly below the horizon
   (:meth:`Simulator.run_below`),
3. repeat.

Safety: a cross-shard message sent at time ``u ≥ T`` arrives no earlier
than ``u + lookahead ≥ T + lookahead`` — beyond the horizon — so no
message can land inside a window that is already executing.  This is
exactly the invariant :meth:`send` enforces.  (Float addition is
monotone, so the inequality survives rounding.)

Determinism: cross-shard messages carry a ``(time, src_shard, seq)``
key — ``seq`` is a per-source channel counter — and are injected at the
barrier in sorted key order.  Within a window each shard's dispatch
order depends only on its own heap, so the merged execution is a pure
function of the initial schedule regardless of how windows are driven
(:meth:`run` runs shards one after another; :meth:`step` interleaves
them in global ``(time, shard_id)`` order; both yield identical
per-shard event streams).

This class is the in-process reference executor; the multiprocessing
executor in :mod:`repro.sim.shard.netrunner` runs the same rounds with
the windows actually concurrent across worker processes.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Any, Callable, List, Optional, Sequence

from ..kernel import Event, SimulationError, Simulator

__all__ = ["ShardedSimulator"]


class ShardedSimulator:
    """N region simulators under one ``run/step/now/schedule`` surface.

    Parameters
    ----------
    shards:
        Number of sub-simulators to create (ignored when ``sims`` is
        given).
    lookahead:
        Minimum cross-shard propagation delay (see
        :func:`repro.sim.shard.partition.partition_graph`).  Must be
        positive; ``inf`` (the default) means the shards share no
        channels and each runs to completion independently.
    sims:
        Pre-built sub-simulators to coordinate (e.g. the ``Network``
        replicas' kernels).  Each must be exclusively driven through
        this object once handed over.
    shard_context:
        Optional ``shard_id -> context manager`` factory entered around
        every dispatch on that shard (the in-process network executor
        uses it to swap per-replica module counters).
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        lookahead: float = math.inf,
        sims: Optional[Sequence[Simulator]] = None,
        shard_context: Optional[Callable[[int], Any]] = None,
    ) -> None:
        if sims is not None:
            self.sims: List[Simulator] = list(sims)
            if shards is not None and shards != len(self.sims):
                raise ValueError("shards does not match len(sims)")
        else:
            if shards is None or shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards!r}")
            self.sims = [Simulator() for _ in range(shards)]
        if not self.sims:
            raise ValueError("need at least one shard")
        if not lookahead > 0.0:
            raise ValueError(f"lookahead must be positive, got {lookahead!r}")
        self.lookahead = lookahead
        self._shard_context = shard_context
        #: buffered cross-shard sends per source shard, drained at barriers
        self._outbox: List[List[tuple]] = [[] for _ in self.sims]
        #: per-source channel sequence numbers (the deterministic tie-break)
        self._chan_seq: List[int] = [0 for _ in self.sims]
        #: rounds executed (reported by benches: barrier-sync overhead proxy)
        self.rounds = 0
        self._horizon: Optional[float] = None  # step-mode open window
        self._running = False

    # ------------------------------------------------------------------
    # aggregate views (the Simulator-compatible surface)
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.sims)

    @property
    def now(self) -> float:
        """Global simulation time: the slowest shard's clock."""
        return min(s.now for s in self.sims)

    @property
    def events_dispatched(self) -> int:
        return sum(s.events_dispatched for s in self.sims)

    @property
    def events_pending(self) -> int:
        return sum(s.events_pending for s in self.sims) + sum(
            len(box) for box in self._outbox
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        shard: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule on ``shard``, ``delay`` seconds after *its* clock."""
        return self.sims[shard].schedule(delay, fn, *args, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        shard: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        return self.sims[shard].schedule_at(time, fn, *args, label=label, **kwargs)

    def send(
        self,
        src: int,
        dst: int,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> None:
        """Buffer a cross-shard message for delivery at absolute ``time``.

        Called from inside a window executing on shard ``src``.  The
        message is injected into ``dst`` at the next barrier; ``time``
        must respect the lookahead contract (``≥ src.now + lookahead``),
        which is what makes the open windows of the other shards safe.
        """
        if src == dst:
            # degenerate case: a local message needs no barrier
            self.sims[dst].schedule_at(time, fn, *args, label=label, **kwargs)
            return
        if not math.isfinite(self.lookahead):
            raise SimulationError(
                "cross-shard send with infinite lookahead: this partition "
                "declared no boundary channels"
            )
        src_now = self.sims[src].now
        if time < src_now + self.lookahead:
            raise SimulationError(
                f"cross-shard message at t={time!r} violates lookahead: "
                f"sender is at t={src_now!r} with lookahead {self.lookahead!r}"
            )
        self._chan_seq[src] += 1
        self._outbox[src].append(
            (time, self._chan_seq[src], dst, fn, args, kwargs, label)
        )

    # ------------------------------------------------------------------
    # the barrier rounds
    # ------------------------------------------------------------------
    def _exchange(self) -> None:
        """Drain every outbox into the destination heaps, sorted by the
        deterministic ``(time, src_shard, seq)`` key."""
        pending = []
        for src, box in enumerate(self._outbox):
            for time, seq, dst, fn, args, kwargs, label in box:
                pending.append((time, src, seq, dst, fn, args, kwargs, label))
            box.clear()
        if not pending:
            return
        pending.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        for time, _src, _seq, dst, fn, args, kwargs, label in pending:
            self.sims[dst].schedule_at(time, fn, *args, label=label, **kwargs)

    def _next_time(self) -> Optional[float]:
        times = [t for t in (s.peek_next_time() for s in self.sims) if t is not None]
        return min(times) if times else None

    def _context(self, shard: int):
        if self._shard_context is None:
            return nullcontext()
        return self._shard_context(shard)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run barrier rounds until exhaustion (or past ``until``).

        Matches :meth:`Simulator.run` semantics: events at exactly
        ``until`` are dispatched, and every shard clock is advanced to
        ``until`` on return.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._horizon = None  # a step-mode window does not survive run()
        base = self.events_dispatched
        try:
            while True:
                self._exchange()
                t = self._next_time()
                if t is None or (until is not None and t > until):
                    break
                self.rounds += 1
                horizon = t + self.lookahead
                if until is not None and horizon > until:
                    # final window: run inclusive of ``until`` — any
                    # message generated at u ≤ until arrives at
                    # u + lookahead ≥ horizon > until, i.e. safely
                    # outside what the other shards are executing
                    for i, sim in enumerate(self.sims):
                        with self._context(i):
                            sim.run(until=until)
                elif not math.isfinite(horizon):
                    # no boundary channels: each region runs independently
                    for i, sim in enumerate(self.sims):
                        with self._context(i):
                            sim.run()
                else:
                    for i, sim in enumerate(self.sims):
                        with self._context(i):
                            sim.run_below(horizon)
                if (
                    max_events is not None
                    and self.events_dispatched - base > max_events
                ):
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
            if until is not None:
                # nothing left at or below ``until``: advance every clock
                for sim in self.sims:
                    sim.run(until=until)
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch the globally next event (``(time, shard_id)`` order).

        Maintains the same windows as :meth:`run` across calls — the
        open horizon persists between steps, and the barrier exchange
        happens exactly when a window drains — so a fully stepped
        execution produces per-shard event streams identical to a
        :meth:`run` one.  Returns False once every heap and outbox is
        empty.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        while True:
            if self._horizon is None:
                self._exchange()
                t = self._next_time()
                if t is None:
                    return False
                self.rounds += 1
                self._horizon = t + self.lookahead
            best_shard: Optional[int] = None
            best_time = self._horizon
            for i, sim in enumerate(self.sims):
                nt = sim.peek_next_time()
                if nt is not None and nt < best_time:
                    best_time = nt
                    best_shard = i
            if best_shard is None:
                self._horizon = None  # window drained: barrier
                continue
            with self._context(best_shard):
                self.sims[best_shard].step()
            return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedSimulator shards={self.shards} t={self.now:.6f} "
            f"pending={self.events_pending} rounds={self.rounds}>"
        )
