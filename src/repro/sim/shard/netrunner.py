"""Sharded execution of EXP-S1 scale cells (the EXP-P2 runner).

Spatial sharding with **full network replicas**: every shard builds the
complete topology identically (global FIB computation needs the whole
graph, and identical construction keeps RNG stream names, interface
uids, and neighbor caches consistent across replicas), but

* only the nodes a shard **owns** (per
  :func:`~repro.sim.shard.partition.partition_graph`) are started and
  scheduled — the other replicas stay inert,
* frames addressed to an interface owned by another shard are *shipped*
  at transmit time (a ``(link, node, packet, arrival)`` record through
  the :class:`~repro.sim.shard.kernel.ShardedSimulator` outbox or a
  ``multiprocessing`` pipe) and injected into the owner replica's copy
  of the link via ``Link._deliver_one`` — so PIM Hellos, Joins/Prunes,
  Asserts, and data packets all cross regions with their real link
  delay, which is never below the partition lookahead.

Two executors run the same barrier rounds:

* ``inproc`` — all replicas in this process under one
  :class:`ShardedSimulator`; the deterministic reference (used by the
  digest-stability tests).  Each replica's packet-uid counter is
  swapped in around its windows so uid streams match the process-per-
  shard executor exactly.
* ``process`` — one worker process per shard over ``multiprocessing``
  pipes; windows execute concurrently, which is where the EXP-P2
  events/s speedup comes from.

Known v1 modelling deltas versus the single-kernel run (documented in
docs/PERFORMANCE.md): boundary-link FIFO serialization (``_busy_until``)
and per-link loss streams are tracked per replica rather than globally,
and seeded handovers stay within the mobile's home region.  Results are
therefore compared for *digest stability at a fixed shard count*, not
for byte equality across shard counts.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import multiprocessing
import traceback
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from ...net.packet import swap_packet_uid_counter
from ...net.stats import STATE_BYTE_COSTS, STATE_KINDS, estimate_state_bytes
from .kernel import ShardedSimulator
from .partition import Partition, partition_graph

__all__ = ["run_sharded_scale_cell"]


class _ShardDeliveryRouter:
    """The ``Link`` hook deciding local delivery vs cross-shard shipping."""

    __slots__ = ("shard_id", "_owner", "_ship")

    def __init__(self, shard_id: int, owner: Dict[str, int], ship) -> None:
        self.shard_id = shard_id
        self._owner = owner
        self._ship = ship

    def local(self, iface) -> bool:
        return self._owner.get(iface.node.name, self.shard_id) == self.shard_id

    def ship(self, link, iface, packet, arrival: float) -> None:
        self._ship(
            self._owner[iface.node.name], link.name, iface.node.name, packet, arrival
        )


class _ShardReplica:
    """One shard's full-topology replica of an EXP-S1 scale cell.

    Mirrors :func:`repro.core.scalestudy.scale_cell` construction order
    exactly (links, routers, sources, receivers, traffic, joins, moves)
    so node names and RNG streams agree across replicas; the only
    divergence is *which* schedule entries are armed (owned nodes only).
    """

    def __init__(
        self,
        spec: Dict[str, Any],
        shards: int,
        shard_id: int,
        receivers: int,
        groups: int,
        mobility: float,
        backend: str,
        seed: int,
        warmup: float,
        duration: float,
        packet_interval: float,
    ) -> None:
        from ...net.topogen import build_network, topo_graph
        from ...pimdm import PimDmConfig
        from ...traffic import make_traffic_model

        graph = topo_graph(spec)
        self.partition = partition_graph(graph, shards)
        self.shard_id = shard_id
        self.graph = graph
        built = build_network(
            graph, seed=seed, pim_config=PimDmConfig(state_backend=backend)
        )
        self.built = built
        self.net = built.net
        part = self.partition

        group_addrs = [built.make_group(g + 1) for g in range(groups)]
        leaf = graph.leaf_links
        sources = [
            built.place_source(f"s{g:03d}", link_name=leaf[g % len(leaf)])
            for g in range(groups)
        ]
        population = built.place_receivers(receivers)

        # ownership: routers per the partition; a host belongs to its
        # home leaf link's shard (its HA is that leaf's router, so the
        # whole home registration stays region-local)
        self._node_owner: Dict[str, int] = dict(part.router_owner)
        for host in sources + population:
            self._node_owner[host.name] = part.link_owner[host.home_link.name]
        owned = {
            name for name, shard in self._node_owner.items() if shard == shard_id
        }

        self.traffic = make_traffic_model("packet")
        self.traffic.attach(self.net)

        # boot only owned engines; the other replicas' copies stay inert
        # (they transmit nothing, and every frame addressed to them is
        # shipped to the owner replica instead of delivered here)
        self.net._startables = [
            fn
            for fn in self.net._startables
            if getattr(fn, "__self__", None) is None
            or fn.__self__.name in owned
        ]

        # cross-shard shipping on the boundary links only — interior
        # links keep the zero-overhead ``None`` fast path
        self._boundary_iface: Dict[Tuple[str, str], Any] = {}
        router = _ShardDeliveryRouter(shard_id, self._node_owner, self._ship)
        for name in part.boundary_links:
            link = self.net.links[name]
            link.set_shard_router(router)
            for iface in link.interfaces:
                self._boundary_iface[(name, iface.node.name)] = iface
        #: buffered shipments (arrival, seq, dst_shard, link, node, packet);
        #: the in-process executor bypasses this via ``ship_hook``
        self._outbox: List[tuple] = []
        self._seq = 0
        self.ship_hook = None

        self.net.start()
        for g, group in enumerate(group_addrs):
            self._schedule_owned_joins(
                population[g::groups],
                group,
                owned,
                start=1.0,
                spread=max(warmup - 2.0, 1.0),
                stream=f"topogen.joins.g{g}",
            )
            if sources[g].name in owned:
                self.traffic.add_cbr(
                    sources[g],
                    group,
                    packet_interval=packet_interval,
                    flow=f"flow-g{g}",
                ).start(at=warmup / 2)
        self.moves = self._schedule_owned_moves(
            population, mobility, owned, start=warmup, horizon=warmup + duration
        )
        # same mid-run peak-state snapshot as the single-kernel cell
        self.net.sim.schedule_at(warmup + duration / 2, self.net.collect_state)

    # ------------------------------------------------------------------
    # seeded schedules: every replica draws the FULL sequence (identical
    # stream consumption everywhere) but arms only its owned hosts
    # ------------------------------------------------------------------
    def _schedule_owned_joins(
        self, hosts, group, owned, start: float, spread: float, stream: str
    ) -> None:
        rng = self.net.rng.stream(stream)
        for host in hosts:
            at = start + rng.uniform(0.0, spread)
            if host.name in owned:
                self.net.sim.schedule_at(
                    at, host.join_group, group, label=f"{host.name}.join"
                )

    def _schedule_owned_moves(
        self,
        hosts,
        moves_per_host: float,
        owned,
        start: float,
        horizon: float,
        stream: str = "topogen.moves",
    ) -> int:
        """Seeded handovers, restricted to the mobile's home region so a
        moved host keeps its shard (v1 contract; see module docstring).
        Returns the count scheduled across *all* shards — identical in
        every replica, since every replica draws the full sequence."""
        part = self.partition
        leaves = list(self.graph.leaf_links)
        if moves_per_host <= 0 or horizon <= start or len(leaves) < 2:
            return 0
        by_shard: Dict[int, List[str]] = {}
        for name in leaves:
            by_shard.setdefault(part.link_owner[name], []).append(name)
        rng = self.net.rng.stream(stream)
        scheduled = 0
        for host in hosts:
            home = host.home_link.name
            pool = [l for l in by_shard[part.link_owner[home]] if l != home]
            n = int(moves_per_host)
            if rng.uniform(0.0, 1.0) < (moves_per_host - n):
                n += 1
            for _ in range(n):
                at = start + rng.uniform(0.0, horizon - start)
                if not pool:
                    # single-leaf region: no in-region target exists
                    continue
                target = rng.choice(pool)
                scheduled += 1
                if host.name in owned:
                    self.net.sim.schedule_at(
                        at,
                        host.move_to,
                        self.net.link(target),
                        label=f"{host.name}.move",
                    )
        return scheduled

    # ------------------------------------------------------------------
    # cross-shard frame plumbing
    # ------------------------------------------------------------------
    def _ship(
        self, dst: int, link_name: str, node_name: str, packet, arrival: float
    ) -> None:
        if self.ship_hook is not None:
            self.ship_hook(dst, link_name, node_name, packet, arrival)
            return
        self._seq += 1
        self._outbox.append((arrival, self._seq, dst, link_name, node_name, packet))

    def take_outbox(self) -> List[tuple]:
        out, self._outbox = self._outbox, []
        return out

    def deliver_boundary(self, link_name: str, node_name: str, packet) -> None:
        """Receive a shipped frame: run the owner-side delivery path
        (detach/down/crash checks + the loss draw) on our replica."""
        link = self.net.links[link_name]
        link._deliver_one(self._boundary_iface[(link_name, node_name)], packet)

    # ------------------------------------------------------------------
    def finish(self) -> None:
        self.traffic.finish()
        self.net.collect_state()

    def result_payload(self) -> Dict[str, Any]:
        from ...obs import digest_events

        stats = self.net.stats
        return {
            "shard": self.shard_id,
            "events": self.net.sim.events_dispatched,
            "trace_events": len(self.net.tracer.events),
            "digest": digest_events(self.net.tracer.events),
            "state_entries": {
                kind: stats.state_entries.get(kind, 0) for kind in STATE_KINDS
            },
            "control_packets": {
                c: stats.total_packets(c) for c in ("pim", "mld", "mipv6")
            },
            "control_bytes": stats.signaling_bytes(),
            "mcast_packets": stats.total_packets("mcast_data"),
            "moves": self.moves,
        }


# ----------------------------------------------------------------------
# in-process executor (deterministic reference)
# ----------------------------------------------------------------------
def _run_inproc(
    params: Dict[str, Any], shards: int, end: float
) -> Tuple[List[Dict[str, Any]], int]:
    replicas: List[_ShardReplica] = []
    counters: List[Any] = []
    for i in range(shards):
        # Network.__init__ resets the module uid counter; capture each
        # replica's counter right after its construction so the window
        # context can restore it — making uid streams identical to the
        # process-per-shard executor, where module state is per-process
        replicas.append(_ShardReplica(shard_id=i, **params))
        counters.append(swap_packet_uid_counter(itertools.count(1)))

    @contextmanager
    def shard_context(i: int):
        prev = swap_packet_uid_counter(counters[i])
        try:
            yield
        finally:
            swap_packet_uid_counter(prev)

    sharded = ShardedSimulator(
        sims=[r.net.sim for r in replicas],
        lookahead=replicas[0].partition.lookahead,
        shard_context=shard_context,
    )

    def make_ship(src: int):
        def ship(dst, link_name, node_name, packet, arrival):
            sharded.send(
                src,
                dst,
                arrival,
                replicas[dst].deliver_boundary,
                link_name,
                node_name,
                packet,
                label=f"{link_name}.xrx",
            )

        return ship

    for i, replica in enumerate(replicas):
        replica.ship_hook = make_ship(i)
        # anything transmitted during synchronous construction/boot was
        # buffered in the replica outbox; re-route it through the
        # coordinator (same (src, seq) order the exchange sort expects)
        for arrival, _seq, dst, link_name, node_name, packet in replica.take_outbox():
            replica.ship_hook(dst, link_name, node_name, packet, arrival)
    sharded.run(until=end)
    for i, replica in enumerate(replicas):
        with shard_context(i):
            replica.finish()
    return [r.result_payload() for r in replicas], sharded.rounds


# ----------------------------------------------------------------------
# process-per-shard executor (the parallel one)
# ----------------------------------------------------------------------
def _shard_worker(conn, params: Dict[str, Any]) -> None:
    """One shard's event loop: build, then serve barrier rounds."""
    try:
        replica = _ShardReplica(**params)
        sim = replica.net.sim
        end = params["warmup"] + params["duration"]
        conn.send(("next", sim.peek_next_time(), []))
        while True:
            msg = conn.recv()
            if msg[0] == "window":
                _, bound, inclusive, incoming = msg
                # incoming is pre-sorted by (time, src, seq) — the same
                # deterministic injection order as ShardedSimulator
                for arrival, link_name, node_name, packet in incoming:
                    sim.schedule_at(
                        arrival,
                        replica.deliver_boundary,
                        link_name,
                        node_name,
                        packet,
                        label=f"{link_name}.xrx",
                    )
                if inclusive:
                    sim.run(until=bound)
                else:
                    sim.run_below(bound)
                conn.send(("next", sim.peek_next_time(), replica.take_outbox()))
            elif msg[0] == "finish":
                sim.run(until=msg[1])
                replica.finish()
                conn.send(("result", replica.result_payload()))
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {msg[0]!r}")
    except Exception:  # pragma: no cover - surfaced by the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


def _mp_context():
    # fork shares the parent's imported modules (fast worker start and
    # no re-import cost); fall back to the platform default elsewhere
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _recv(conn):
    msg = conn.recv()
    if msg[0] == "error":
        raise RuntimeError(f"shard worker failed:\n{msg[1]}")
    return msg


def _run_mp(
    params: Dict[str, Any], shards: int, lookahead: float, end: float
) -> Tuple[List[Dict[str, Any]], int]:
    ctx = _mp_context()
    conns, procs = [], []
    try:
        for i in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, {**params, "shard_id": i}),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        next_times: List[Optional[float]] = [None] * shards
        #: in-flight cross-shard messages (time, src, seq, dst, link, node, packet)
        pending: List[tuple] = []
        for i, conn in enumerate(conns):
            _, next_times[i], _ = _recv(conn)
        rounds = 0
        while True:
            candidates = [t for t in next_times if t is not None]
            candidates += [m[0] for m in pending]
            if not candidates:
                break
            t = min(candidates)
            if t > end:
                break
            rounds += 1
            horizon = t + lookahead
            inclusive = not math.isfinite(horizon) or horizon > end
            bound = end if inclusive else horizon
            pending.sort(key=lambda m: (m[0], m[1], m[2]))
            route: List[List[tuple]] = [[] for _ in range(shards)]
            for time_, _src, _seq, dst, link_name, node_name, packet in pending:
                route[dst].append((time_, link_name, node_name, packet))
            pending = []
            for i, conn in enumerate(conns):
                conn.send(("window", bound, inclusive, route[i]))
            for i, conn in enumerate(conns):
                _, next_times[i], out = _recv(conn)
                for arrival, seq, dst, link_name, node_name, packet in out:
                    pending.append(
                        (arrival, i, seq, dst, link_name, node_name, packet)
                    )
        for conn in conns:
            conn.send(("finish", end))
        payloads = [_recv(conn)[1] for conn in conns]
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
    payloads.sort(key=lambda p: p["shard"])
    return payloads, rounds


# ----------------------------------------------------------------------
# public entry: a sharded EXP-S1 cell with the scale_cell result schema
# ----------------------------------------------------------------------
def run_sharded_scale_cell(
    model: str = "hier",
    model_params: Optional[Dict[str, Any]] = None,
    receivers: int = 100,
    groups: int = 1,
    mobility: float = 0.0,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    duration: float = 30.0,
    packet_interval: float = 1.0,
    shards: int = 2,
    executor: str = "process",
) -> Dict[str, Any]:
    """Run one EXP-S1 cell across ``shards`` regions.

    Returns the :func:`repro.core.scalestudy.scale_cell` result schema
    (state/control metrics merged across shards — state is partitioned
    by node ownership, link accounting by transmitting replica, so sums
    are double-count-free) plus a ``"shards"`` block with the partition
    summary, barrier-round count, and the per-shard trace digests whose
    hash is the run's determinism fingerprint.
    """
    from ...net.topogen import topo_graph

    if executor not in ("process", "inproc"):
        raise ValueError(f"unknown shard executor {executor!r}")
    spec = {"model": model, **(model_params or {})}
    graph = topo_graph(spec)
    partition = partition_graph(graph, shards)
    params = dict(
        spec=spec,
        shards=shards,
        receivers=receivers,
        groups=groups,
        mobility=mobility,
        backend=backend,
        seed=seed,
        warmup=warmup,
        duration=duration,
        packet_interval=packet_interval,
    )
    end = warmup + duration
    if executor == "inproc" or shards == 1:
        payloads, rounds = _run_inproc(params, shards, end)
    else:
        payloads, rounds = _run_mp(params, shards, partition.lookahead, end)

    entries = {
        kind: sum(p["state_entries"][kind] for p in payloads)
        for kind in STATE_KINDS
    }
    snap = {
        "entries": entries,
        "total_entries": sum(entries.values()),
        "bytes": {
            backend_name: estimate_state_bytes(entries, backend_name)
            for backend_name in sorted(STATE_BYTE_COSTS)
        },
    }
    gain = (
        snap["bytes"]["dict"] / snap["bytes"]["compact"]
        if snap["bytes"]["compact"]
        else 1.0
    )
    digests = [p["digest"] for p in payloads]
    # uid streams restart per shard, so digests are meaningful per shard;
    # the merged fingerprint is the hash of the ordered per-shard list
    merged = hashlib.sha256("\n".join(digests).encode()).hexdigest()
    return {
        "model": model,
        "model_params": dict(model_params or {}),
        "routers": len(graph.routers),
        "links": len(graph.links),
        "receivers": receivers,
        "groups": groups,
        "mobility": mobility,
        "moves": payloads[0]["moves"],
        "backend": backend,
        "seed": seed,
        "graph_digest": graph.digest(),
        "events": sum(p["events"] for p in payloads),
        "state": snap,
        "aggregation_gain": round(gain, 4),
        "control_packets": {
            c: sum(p["control_packets"][c] for p in payloads)
            for c in ("pim", "mld", "mipv6")
        },
        "control_bytes": sum(p["control_bytes"] for p in payloads),
        "mcast_packets": sum(p["mcast_packets"] for p in payloads),
        "shards": {
            "count": shards,
            "executor": executor,
            "rounds": rounds,
            "lookahead": partition.lookahead,
            "boundary_links": len(partition.boundary_links),
            "routers_per_shard": partition.describe()["routers_per_shard"],
            "per_shard_events": [p["events"] for p in payloads],
            "digests": digests,
            "digest": merged,
        },
    }
