"""Spatial region partitioning for the sharded kernel (EXP-P2).

A :class:`~repro.net.topogen.TopoGraph` is split into ``shards``
contiguous blocks of routers **in graph order**.  The generators emit
routers in level order (``hierarchical_graph``) / pod order
(``fattree_graph``), so consecutive routers share subtrees/pods and a
contiguous cut keeps most links internal to one region — the cheap,
deterministic analogue of a min-cut partitioner.

The conservative synchronization contract hangs off this split:

* a **boundary link** is one whose attached routers span more than one
  shard — the only channels between regions,
* the **lookahead** is the minimum propagation delay over the boundary
  links: a frame transmitted at time *t* cannot arrive at another
  region before ``t + lookahead``, so every shard may safely dispatch
  all events strictly below ``LBTS + lookahead`` (see
  :class:`repro.sim.shard.kernel.ShardedSimulator`).

Everything here is a pure function of ``(graph, shards)`` — same graph
and shard count ⇒ identical partition on every machine and run, which
is what makes sharded runs digest-stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Partition", "partition_graph"]


@dataclass(frozen=True)
class Partition:
    """A spatial split of a topology graph into simulator regions."""

    shards: int
    #: router name -> owning shard id
    router_owner: Dict[str, int]
    #: link name -> owning shard id (shard of its first attached router)
    link_owner: Dict[str, int]
    #: links whose attached routers span more than one shard, graph order
    boundary_links: Tuple[str, ...]
    #: min boundary-link delay; ``inf`` when no link crosses regions
    lookahead: float

    def owner_of(self, router_name: str) -> int:
        return self.router_owner[router_name]

    def describe(self) -> Dict[str, object]:
        """Machine-readable summary (logged by sweeps and benches)."""
        sizes = [0] * self.shards
        for shard in self.router_owner.values():
            sizes[shard] += 1
        return {
            "shards": self.shards,
            "routers_per_shard": sizes,
            "boundary_links": len(self.boundary_links),
            "lookahead": self.lookahead,
        }


def partition_graph(graph, shards: int) -> Partition:
    """Partition ``graph`` into ``shards`` contiguous router blocks.

    Router ``j`` of ``n`` (graph order) goes to shard ``j·shards // n``
    — blocks differ in size by at most one router.  A link is owned by
    the shard of its first attached router (attachment order); links
    attaching routers from several shards are the boundary set, and
    their minimum delay is the lookahead bound.

    Raises ``ValueError`` for ``shards < 1``, more shards than routers,
    or a zero-delay boundary link (which would collapse the lookahead
    window to nothing — conservative synchronization needs strictly
    positive lookahead).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    n = len(graph.routers)
    if shards > n:
        raise ValueError(
            f"cannot split {n} routers into {shards} shards; "
            "use at most one shard per router"
        )
    router_owner = {
        spec.name: idx * shards // n for idx, spec in enumerate(graph.routers)
    }
    delays = {spec.name: spec.delay for spec in graph.links}
    link_owner: Dict[str, int] = {}
    boundary = []
    lookahead = math.inf
    for link_name, members in graph.routers_on().items():
        owners = [router_owner[name] for name in members]
        # a link with no attached router cannot carry traffic between
        # regions; park it on shard 0
        link_owner[link_name] = owners[0] if owners else 0
        if len(set(owners)) > 1:
            boundary.append(link_name)
            if delays[link_name] <= 0.0:
                raise ValueError(
                    f"boundary link {link_name!r} has zero delay; "
                    "conservative sharding needs positive lookahead"
                )
            lookahead = min(lookahead, delays[link_name])
    return Partition(
        shards=shards,
        router_owner=router_owner,
        link_owner=link_owner,
        boundary_links=tuple(boundary),
        lookahead=lookahead,
    )
