"""Structured event tracing.

Metrics in the reproduction (join delay, leave delay, assert counts,
flood extents, tunnel overhead) are computed from a structured trace
rather than by instrumenting protocol code with ad-hoc counters.  Every
protocol entity emits :class:`TraceEvent` records through a shared
:class:`Tracer`; analysis code queries the trace afterwards.

Storage and querying are backed by the indexed
:class:`~repro.obs.store.TraceStore` (per-category and per-node
indexes, time bisection, optional bounded ring-buffer mode), so
``query``/``first``/``last``/``count`` no longer scan every event.
The query API itself lives in
:class:`~repro.obs.store.TraceQueryMixin`, shared with the offline
:class:`~repro.obs.export.TraceArchive`.

Categories in use across the reproduction:

=================  =====================================================
category           meaning
=================  =====================================================
``mld``            Query / Report / Done sent or processed
``pim``            Prune / Join / Graft / GraftAck / Assert / Hello
``pim.state``      (S,G) entry created / pruned / grafted / expired
``mipv6``          Binding Update / Ack, tunnel encap / decap
``mcast.deliver``  application-level multicast delivery at a receiver
``mcast.forward``  a router forwarded a multicast datagram onto a link
``mobility``       a mobile node detached / attached / configured a CoA
``fault``          an injected fault fired (:mod:`repro.faults`)
``drop``           a link dropped a frame (reason: ``nd-failure``,
                   ``link-loss``, ``link-down``, ``node-crashed``,
                   ``sender-detached``)
``link``           transmission records (optional, high volume)
=================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..obs.store import TraceQueryMixin, TraceStore
from .kernel import Simulator

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    category: str
    node: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def matches(self, **criteria: Any) -> bool:
        """True if every ``detail`` criterion matches this event."""
        return all(self.detail.get(k) == v for k, v in criteria.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.category:<14} {self.node:<10} {kv}"


class Tracer(TraceQueryMixin):
    """Collects :class:`TraceEvent` records and serves indexed queries.

    Recording of high-volume categories (``link``) can be disabled for
    long benchmark runs; all protocol-level categories are always cheap
    enough to keep.  For very long runs, ``capacity=N`` keeps only the
    newest N events (ring-buffer mode) so memory stays bounded.
    """

    def __init__(
        self,
        sim: Simulator,
        enabled_categories: Optional[Iterable[str]] = None,
        disabled_categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self._enabled = set(enabled_categories) if enabled_categories else None
        self._disabled = set(disabled_categories or ())
        if self._enabled is not None:
            overlap = self._enabled & self._disabled
            if overlap:
                raise ValueError(
                    "categories both enabled and disabled: "
                    f"{sorted(overlap)}"
                )
        self._store = TraceStore(capacity=capacity)
        self._listeners: List[Callable[[TraceEvent], None]] = []
        #: category -> recorded? memo, so the hot path (record / wants)
        #: is a single dict hit instead of two set probes; invalidated
        #: by enable/disable.
        self._active_cache: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def record(self, category: str, node: str, **detail: Any) -> None:
        """Record one event at the current simulation time."""
        active = self._active_cache.get(category)
        if active is None:
            active = self._active_cache[category] = self.is_enabled(category)
        if not active:
            return
        ev = TraceEvent(self.sim.now, category, node, detail)
        self._store.append(ev)
        for listener in self._listeners:
            listener(ev)

    def wants(self, category: str) -> bool:
        """Cached :meth:`is_enabled` for hot call sites.

        High-volume producers (``Link.transmit``'s ``link`` records)
        check this *before* building the event detail — a disabled
        category then costs one dict lookup instead of a
        ``packet.describe()`` plus a kwargs dict per frame.
        """
        active = self._active_cache.get(category)
        if active is None:
            active = self._active_cache[category] = self.is_enabled(category)
        return active

    def add_listener(
        self,
        fn: Callable[[TraceEvent], None],
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        """Register a live listener (used by online metric collectors).

        With ``categories``, the listener only sees events whose
        category is in the set — a span recorder subscribed to the
        control-plane categories then costs one membership probe per
        data-plane event instead of a full callback.
        """
        if categories is not None:
            cats = frozenset(categories)

            def filtered(ev: TraceEvent, _fn=fn, _cats=cats) -> None:
                if ev.category in _cats:
                    _fn(ev)

            self._listeners.append(filtered)
            return
        self._listeners.append(fn)

    def disable(self, category: str) -> None:
        """Stop recording ``category`` (existing events are kept)."""
        self._disabled.add(category)
        self._active_cache.clear()

    def enable(self, category: str) -> None:
        """(Re-)enable recording of ``category``.

        Complements :meth:`disable`: removes the category from the
        disabled set and, when a whitelist is active, adds it there.
        """
        self._disabled.discard(category)
        if self._enabled is not None:
            self._enabled.add(category)
        self._active_cache.clear()

    def is_enabled(self, category: str) -> bool:
        """Would an event in ``category`` be recorded right now?"""
        if category in self._disabled:
            return False
        return self._enabled is None or category in self._enabled

    # ------------------------------------------------------------------
    # storage control
    # ------------------------------------------------------------------
    @property
    def store(self) -> TraceStore:
        """The backing :class:`~repro.obs.store.TraceStore`."""
        return self._store

    @property
    def capacity(self) -> Optional[int]:
        return self._store.capacity

    def set_capacity(self, capacity: Optional[int]) -> None:
        """Switch to ring-buffer mode (or back to unbounded).

        Existing events are re-indexed into the new store; when the new
        capacity is smaller than the current trace, only the newest
        events survive — exactly as if the run had recorded into the
        ring from the start.
        """
        store = TraceStore(capacity=capacity)
        for ev in self._store.events:
            store.append(ev)
        self._store = store

    # ``query``/``first``/``last``/``count``/``clear`` and the
    # ``events`` view come from TraceQueryMixin.

    def dump(self, limit: Optional[int] = None) -> str:  # pragma: no cover
        """Human-readable trace listing (debugging aid)."""
        rows = self.events if limit is None else self.events[:limit]
        return "\n".join(repr(ev) for ev in rows)
