"""Structured event tracing.

Metrics in the reproduction (join delay, leave delay, assert counts,
flood extents, tunnel overhead) are computed from a structured trace
rather than by instrumenting protocol code with ad-hoc counters.  Every
protocol entity emits :class:`TraceEvent` records through a shared
:class:`Tracer`; analysis code queries the trace afterwards.

Categories in use across the reproduction:

=================  =====================================================
category           meaning
=================  =====================================================
``mld``            Query / Report / Done sent or processed
``pim``            Prune / Join / Graft / GraftAck / Assert / Hello
``pim.state``      (S,G) entry created / pruned / grafted / expired
``mipv6``          Binding Update / Ack, tunnel encap / decap
``mcast.deliver``  application-level multicast delivery at a receiver
``mcast.forward``  a router forwarded a multicast datagram onto a link
``mobility``       a mobile node detached / attached / configured a CoA
``link``           transmission records (optional, high volume)
=================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from .kernel import Simulator

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    category: str
    node: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def matches(self, **criteria: Any) -> bool:
        """True if every ``detail`` criterion matches this event."""
        return all(self.detail.get(k) == v for k, v in criteria.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.category:<14} {self.node:<10} {kv}"


class Tracer:
    """Collects :class:`TraceEvent` records and serves queries.

    Recording of high-volume categories (``link``) can be disabled for
    long benchmark runs; all protocol-level categories are always cheap
    enough to keep.
    """

    def __init__(
        self,
        sim: Simulator,
        enabled_categories: Optional[Iterable[str]] = None,
        disabled_categories: Optional[Iterable[str]] = None,
    ) -> None:
        self.sim = sim
        self.events: List[TraceEvent] = []
        self._enabled = set(enabled_categories) if enabled_categories else None
        self._disabled = set(disabled_categories or ())
        self._listeners: List[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------
    def record(self, category: str, node: str, **detail: Any) -> None:
        """Record one event at the current simulation time."""
        if category in self._disabled:
            return
        if self._enabled is not None and category not in self._enabled:
            return
        ev = TraceEvent(self.sim.now, category, node, detail)
        self.events.append(ev)
        for listener in self._listeners:
            listener(ev)

    def add_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a live listener (used by online metric collectors)."""
        self._listeners.append(fn)

    def disable(self, category: str) -> None:
        self._disabled.add(category)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        **criteria: Any,
    ) -> Iterator[TraceEvent]:
        """Iterate events filtered by category / node / time / detail."""
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if node is not None and ev.node != node:
                continue
            if since is not None and ev.time < since:
                continue
            if until is not None and ev.time > until:
                continue
            if criteria and not ev.matches(**criteria):
                continue
            yield ev

    def first(self, category: Optional[str] = None, **kw: Any) -> Optional[TraceEvent]:
        """First matching event, or None."""
        return next(self.query(category, **kw), None)

    def last(self, category: Optional[str] = None, **kw: Any) -> Optional[TraceEvent]:
        """Last matching event, or None."""
        result = None
        for ev in self.query(category, **kw):
            result = ev
        return result

    def count(self, category: Optional[str] = None, **kw: Any) -> int:
        """Number of matching events."""
        return sum(1 for _ in self.query(category, **kw))

    def clear(self) -> None:
        self.events.clear()

    def dump(self, limit: Optional[int] = None) -> str:  # pragma: no cover
        """Human-readable trace listing (debugging aid)."""
        rows = self.events if limit is None else self.events[:limit]
        return "\n".join(repr(ev) for ev in rows)
