"""Deterministic random number streams.

Protocol behaviour in this reproduction uses randomness in exactly the
places the specifications do:

* MLD response-delay timers: uniform in [0, T_RespDel] (RFC 2710 §4),
* mobility models: move epochs and destination links,
* traffic models: on/off phase lengths.

To keep experiments reproducible and independent of call order between
subsystems, each consumer asks the :class:`RngRegistry` for a *named
stream*; each stream is an independently seeded ``random.Random``
derived from the master seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(seed: int, name: str) -> int:
    """Deterministic child seed for ``name`` under a master ``seed``.

    The same SHA-256 derivation :class:`RngRegistry` uses for its named
    streams, exposed so batch machinery (``repro.campaign``) can hand
    every shard an independent, reproducible seed without coordinating
    call order.

    >>> derive_seed(0, "cell-1") == derive_seed(0, "cell-1")
    True
    >>> derive_seed(0, "cell-1") == derive_seed(1, "cell-1")
    False
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Registry of named, independently seeded random streams.

    >>> r1 = RngRegistry(seed=42)
    >>> r2 = RngRegistry(seed=42)
    >>> r1.stream("mld").random() == r2.stream("mld").random()
    True
    >>> r1.stream("mld").random() == r1.stream("mobility").random()
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """Draw uniform [lo, hi] from the named stream."""
        return self.stream(name).uniform(lo, hi)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential inter-arrival with the given rate (1/s)."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq):
        """Pick an element of ``seq`` uniformly from the named stream."""
        return self.stream(name).choice(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
