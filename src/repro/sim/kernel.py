"""Discrete-event simulation kernel.

The kernel is a deterministic event-driven scheduler.  Every protocol
entity in the reproduction (links, MLD hosts and routers, PIM-DM
routers, mobile nodes, home agents, traffic sources) schedules callbacks
on a single :class:`Simulator` instance.  Determinism is guaranteed by

* a monotonically increasing sequence number that breaks ties between
  events scheduled for the same instant (FIFO within an instant), and
* a single seeded random number stream (see :mod:`repro.sim.rng`).

Time is a float in **seconds**, matching the units the paper uses for
every protocol timer (T_Query = 125 s, T_MLI = 260 s, data timeout =
210 s, T_PruneDel = 3 s, ...).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  They may be cancelled; cancellation
    is O(1) (lazy deletion from the heap).
    """

    __slots__ = (
        "time",
        "fn",
        "args",
        "kwargs",
        "cancelled",
        "dispatched",
        "label",
        "_sim",
    )

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        label: str = "",
    ) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.dispatched = False
        self.label = label
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel the event.  Cancelling a dispatched event is a no-op."""
        if self.cancelled or self.dispatched:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._pending_count -= 1

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will fire."""
        return not self.cancelled and not self.dispatched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled"
            if self.cancelled
            else ("dispatched" if self.dispatched else "pending")
        )
        name = self.label or getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._dispatched_count = 0
        self._pending_count = 0
        self._profiler: Optional[Any] = None
        self._dispatch_hook: Optional[Callable[["Event"], None]] = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks executed so far (kernel statistic)."""
        return self._dispatched_count

    @property
    def events_pending(self) -> int:
        """Number of queued, not-yet-cancelled events.

        O(1): a live counter maintained on schedule / cancel /
        dispatch, instead of summing over the whole heap.
        """
        return self._pending_count

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with None) a dispatch profiler.

        The profiler's ``account(label, elapsed_seconds)`` is called
        after every dispatched callback; see
        :class:`repro.obs.profiler.KernelProfiler`.  With no profiler
        installed the dispatch loop pays one ``is None`` check per
        event.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional[Any]:
        return self._profiler

    def set_dispatch_hook(self, hook: Optional[Callable[["Event"], None]]) -> None:
        """Install (or remove, with None) a pre-dispatch inspection hook.

        The hook is called with each :class:`Event` immediately before
        its callback executes — before the clock advances — so it can
        audit kernel legality (monotonic event time, no dispatch of a
        cancelled event); see
        :class:`repro.invariants.kernel.KernelSanityOracle`.  With no
        hook installed the dispatch loop pays one ``is None`` check per
        event.
        """
        self._dispatch_hook = hook

    @property
    def dispatch_hook(self) -> Optional[Callable[["Event"], None]]:
        return self._dispatch_hook

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  A zero delay schedules the
        callback at the current instant, after all callbacks already
        queued for this instant (FIFO ordering).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r}"
            )
        event = Event(time, fn, args, kwargs, label=label)
        event._sim = self
        heapq.heappush(self._heap, _HeapEntry(time, next(self._seq), event))
        self._pending_count += 1
        return event

    def call_now(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at the current instant (after queued same-time events)."""
        return self.schedule(0.0, fn, *args, **kwargs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns False when the queue is exhausted.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry.event
            if event.cancelled:
                continue
            if self._dispatch_hook is not None:
                self._dispatch_hook(event)
            self._now = event.time
            event.dispatched = True
            self._dispatched_count += 1
            self._pending_count -= 1
            profiler = self._profiler
            if profiler is None:
                event.fn(*event.args, **event.kwargs)
            else:
                started = perf_counter()
                event.fn(*event.args, **event.kwargs)
                profiler.account(
                    event.label or getattr(event.fn, "__qualname__", "?"),
                    perf_counter() - started,
                )
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time, and
            advance the clock to ``until``.  ``None`` runs to queue
            exhaustion.
        max_events:
            Safety valve; raise :class:`SimulationError` if more than
            this many events are dispatched in this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._heap)
                event = entry.event
                if self._dispatch_hook is not None:
                    self._dispatch_hook(event)
                self._now = event.time
                event.dispatched = True
                self._dispatched_count += 1
                self._pending_count -= 1
                profiler = self._profiler
                if profiler is None:
                    event.fn(*event.args, **event.kwargs)
                else:
                    started = perf_counter()
                    event.fn(*event.args, **event.kwargs)
                    profiler.account(
                        event.label or getattr(event.fn, "__qualname__", "?"),
                        perf_counter() - started,
                    )
                dispatched += 1
                if max_events is not None and dispatched > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={self.events_pending}>"
