"""Discrete-event simulation kernel.

The kernel is a deterministic event-driven scheduler.  Every protocol
entity in the reproduction (links, MLD hosts and routers, PIM-DM
routers, mobile nodes, home agents, traffic sources) schedules callbacks
on a single :class:`Simulator` instance.  Determinism is guaranteed by

* a monotonically increasing sequence number that breaks ties between
  events scheduled for the same instant (FIFO within an instant), and
* a single seeded random number stream (see :mod:`repro.sim.rng`).

Time is a float in **seconds**, matching the units the paper uses for
every protocol timer (T_Query = 125 s, T_MLI = 260 s, data timeout =
210 s, T_PruneDel = 3 s, ...).

Performance notes (see docs/PERFORMANCE.md)
-------------------------------------------
Heap entries are plain ``(time, seq, event)`` tuples so the ``heapq``
sift comparisons run entirely in C — the previous ``@dataclass
(order=True)`` entry paid a Python-level ``__lt__`` (plus two tuple
allocations) per comparison, dominating dispatch cost at scale.

Cancellation is O(1) lazy deletion, but restart-heavy protocol
patterns (PIM-DM restarts the 210 s (S,G) data timeout on *every*
forwarded packet; MLD restarts T_MLI on every Report) would otherwise
grow the heap without bound with cancelled tombstones and slow every
``heappush`` logarithmically.  The kernel therefore tracks the number
of cancelled entries still in the heap and **compacts** (filters +
re-heapifies) once the cancelled fraction passes a threshold
(:meth:`Simulator.set_compaction`).  Compaction preserves the
``(time, seq)`` keys, so FIFO tie-breaking — and hence every golden
trace — is unaffected.
"""

from __future__ import annotations

import heapq
from itertools import count
from time import perf_counter
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


#: A scheduled heap entry.  Plain tuples compare in C; ``seq`` is unique
#: per simulator, so ``event`` is never reached by a comparison.
_HeapEntry = Tuple[float, int, "Event"]


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  They may be cancelled; cancellation
    is O(1) (lazy deletion from the heap, amortized by compaction).
    """

    __slots__ = (
        "time",
        "fn",
        "args",
        "kwargs",
        "cancelled",
        "dispatched",
        "label",
        "_sim",
    )

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        label: str = "",
    ) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.dispatched = False
        self.label = label
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel the event.  Cancelling a dispatched event is a no-op."""
        if self.cancelled or self.dispatched:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will fire."""
        return not self.cancelled and not self.dispatched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled"
            if self.cancelled
            else ("dispatched" if self.dispatched else "pending")
        )
        name = self.label or getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: Default compaction trigger: rebuild the heap once more than
    #: COMPACT_MIN_ENTRIES cancelled tombstones accumulate *and* they
    #: make up more than COMPACT_RATIO of the heap.
    COMPACT_MIN_ENTRIES = 1024
    COMPACT_RATIO = 0.5

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[_HeapEntry] = []
        self._seq = count()
        self._running = False
        self._dispatched_count = 0
        self._pending_count = 0
        self._cancelled_in_heap = 0
        self._compactions = 0
        self._compact_min = self.COMPACT_MIN_ENTRIES
        self._compact_ratio = self.COMPACT_RATIO
        self._profiler: Optional[Any] = None
        self._dispatch_hook: Optional[Callable[["Event"], None]] = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks executed so far (kernel statistic)."""
        return self._dispatched_count

    @property
    def events_pending(self) -> int:
        """Number of queued, not-yet-cancelled events.

        O(1): a live counter maintained on schedule / cancel /
        dispatch, instead of summing over the whole heap.
        """
        return self._pending_count

    # ------------------------------------------------------------------
    # heap health (cancelled-entry compaction)
    # ------------------------------------------------------------------
    @property
    def heap_size(self) -> int:
        """Entries physically in the heap (pending + cancelled tombstones)."""
        return len(self._heap)

    @property
    def heap_cancelled(self) -> int:
        """Cancelled tombstones still occupying heap slots."""
        return self._cancelled_in_heap

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (kernel statistic)."""
        return self._compactions

    def set_compaction(self, min_entries: int, ratio: float) -> None:
        """Tune the cancelled-entry compaction trigger.

        The heap is rebuilt (cancelled tombstones filtered out, then
        re-heapified) whenever more than ``min_entries`` cancelled
        entries are queued *and* they exceed ``ratio`` of the heap.
        ``min_entries=0, ratio=0.0`` compacts on every cancellation —
        useful in tests; the defaults amortize the O(n) rebuild over at
        least ``min_entries`` O(1) cancellations.
        """
        if min_entries < 0:
            raise ValueError(f"min_entries must be >= 0, got {min_entries!r}")
        if not 0.0 <= ratio < 1.0:
            raise ValueError(f"ratio must be in [0, 1), got {ratio!r}")
        self._compact_min = min_entries
        self._compact_ratio = ratio

    def _note_cancel(self) -> None:
        """Account one cancellation; compact when tombstones dominate."""
        self._pending_count -= 1
        cancelled = self._cancelled_in_heap + 1
        self._cancelled_in_heap = cancelled
        if cancelled >= self._compact_min and cancelled > len(self._heap) * self._compact_ratio:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled tombstones and re-heapify.

        ``(time, seq)`` keys are untouched, so event ordering — including
        FIFO tie-breaking within an instant — is exactly preserved.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with None) a dispatch profiler.

        The profiler's ``account(label, elapsed_seconds)`` is called
        after every dispatched callback; see
        :class:`repro.obs.profiler.KernelProfiler`.  With no profiler
        installed the dispatch loop pays one ``is None`` check per
        event.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional[Any]:
        return self._profiler

    def set_dispatch_hook(self, hook: Optional[Callable[["Event"], None]]) -> None:
        """Install (or remove, with None) a pre-dispatch inspection hook.

        The hook is called with each :class:`Event` immediately before
        its callback executes — before the clock advances — so it can
        audit kernel legality (monotonic event time, no dispatch of a
        cancelled event); see
        :class:`repro.invariants.kernel.KernelSanityOracle`.  With no
        hook installed the dispatch loop pays one ``is None`` check per
        event.
        """
        self._dispatch_hook = hook

    @property
    def dispatch_hook(self) -> Optional[Callable[["Event"], None]]:
        return self._dispatch_hook

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  A zero delay schedules the
        callback at the current instant, after all callbacks already
        queued for this instant (FIFO ordering).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r}"
            )
        event = Event(time, fn, args, kwargs, label=label)
        event._sim = self
        heapq.heappush(self._heap, (time, next(self._seq), event))
        self._pending_count += 1
        return event

    def call_now(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at the current instant (after queued same-time events)."""
        return self.schedule(0.0, fn, *args, **kwargs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the next live event, discarding cancelled tombstones.

        Returns None when the queue is exhausted or the next live event
        lies strictly beyond ``until``.  Re-reads ``self._heap`` on
        entry so it composes with compaction triggered by callbacks.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            if until is not None and head[0] > until:
                return None
            heapq.heappop(heap)
            return head[2]
        return None

    def _dispatch(self, event: Event) -> None:
        """The single dispatch core shared by :meth:`step` and :meth:`run`:

        inspection hook, clock advance, accounting, callback, profiler.
        Having exactly one copy keeps ``step()``- and ``run()``-driven
        executions behaviourally identical (same hooks, same counters,
        same trace streams) — they had drifted apart when each carried
        its own loop body.
        """
        if self._dispatch_hook is not None:
            self._dispatch_hook(event)
        self._now = event.time
        event.dispatched = True
        self._dispatched_count += 1
        self._pending_count -= 1
        profiler = self._profiler
        if profiler is None:
            event.fn(*event.args, **event.kwargs)
        else:
            started = perf_counter()
            event.fn(*event.args, **event.kwargs)
            profiler.account(
                event.label or getattr(event.fn, "__qualname__", "?"),
                perf_counter() - started,
            )

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns False when the queue is exhausted.
        """
        event = self._pop_next()
        if event is None:
            return False
        self._dispatch(event)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time, and
            advance the clock to ``until``.  ``None`` runs to queue
            exhaustion.
        max_events:
            Safety valve; raise :class:`SimulationError` if more than
            this many events are dispatched in this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while True:
                event = self._pop_next(until)
                if event is None:
                    break
                self._dispatch(event)
                dispatched += 1
                if max_events is not None and dispatched > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_below(self, bound: float, max_events: Optional[int] = None) -> int:
        """Dispatch every pending event with ``time < bound`` (strict).

        The window primitive of conservative parallel simulation
        (:mod:`repro.sim.shard`): a shard granted the window
        ``[now, bound)`` may dispatch everything strictly below the
        bound, because lookahead guarantees no cross-shard message can
        arrive inside it.  Unlike :meth:`run`, the clock is *not*
        advanced to the bound — the next window may start earlier than
        ``bound`` at another shard.  Returns the number of events
        dispatched.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        dispatched = 0
        try:
            heap = self._heap
            while heap:
                head = heap[0]
                if head[2].cancelled:
                    heapq.heappop(heap)
                    self._cancelled_in_heap -= 1
                    heap = self._heap
                    continue
                if head[0] >= bound:
                    break
                heapq.heappop(heap)
                self._dispatch(head[2])
                dispatched += 1
                if max_events is not None and dispatched > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                # callbacks may trigger compaction, which rebinds the heap
                heap = self._heap
        finally:
            self._running = False
        return dispatched

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0][0] if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={self.events_pending}>"
