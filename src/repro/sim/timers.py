"""Restartable protocol timers.

Every timer the paper discusses maps onto a :class:`Timer`:

* MLD group membership timer (T_MLI, default 260 s) — restarted by each
  Report (RFC 2710 §4).
* MLD query interval timer (T_Query, default 125 s) — periodic.
* PIM-DM (S,G) entry data timeout (210 s) — restarted by forwarded data.
* PIM-DM prune-pending timer (T_PruneDel, default 3 s) — cancelled by a
  Join override.
* Mobile IPv6 binding lifetime (default 256 s) — restarted by Binding
  Updates.

A Timer wraps kernel events so that protocol code never has to manage
Event handles or worry about stale callbacks after a restart.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .kernel import Event, Simulator

__all__ = ["Timer", "PeriodicTimer"]


class Timer:
    """One-shot restartable timer.

    >>> sim = Simulator()
    >>> fired = []
    >>> t = Timer(sim, lambda: fired.append(sim.now), name="demo")
    >>> t.start(10.0)
    >>> sim.run(until=5.0)
    >>> t.restart(10.0)        # e.g. a Report refreshed the membership
    >>> sim.run()
    >>> fired
    [15.0]
    """

    __slots__ = ("sim", "callback", "name", "_event", "duration")

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        name: str = "timer",
    ) -> None:
        self.sim = sim
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self.duration: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the timer is armed and has not yet expired."""
        return self._event is not None and self._event.pending

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when not running."""
        return self._event.time if self.running else None

    @property
    def remaining(self) -> Optional[float]:
        """Seconds until expiry, or None when not running."""
        return None if not self.running else self._event.time - self.sim.now

    # ------------------------------------------------------------------
    def start(self, duration: float) -> None:
        """Arm the timer.  Restarts (reschedules) if already running."""
        self.stop()
        self.duration = duration
        self._event = self.sim.schedule(duration, self._fire, label=self.name)

    def restart(self, duration: Optional[float] = None) -> None:
        """Re-arm with a new duration (or the previous one)."""
        if duration is None:
            if self.duration is None:
                raise ValueError(f"timer {self.name!r} was never started")
            duration = self.duration
        self.start(duration)

    def stop(self) -> None:
        """Disarm the timer.  Safe to call when not running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.running:
            return f"<Timer {self.name} expires_at={self.expires_at:.3f}>"
        return f"<Timer {self.name} idle>"


class PeriodicTimer:
    """Fixed-period repeating timer (e.g. the MLD Query interval).

    The callback runs every ``period`` seconds after :meth:`start`.
    The first tick may optionally fire immediately (MLD queriers send a
    Query as soon as they assume the querier role).
    """

    __slots__ = ("sim", "callback", "name", "period", "_event")

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        period: float,
        name: str = "periodic",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.sim = sim
        self.callback = callback
        self.name = name
        self.period = period
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        return self._event is not None and self._event.pending

    def start(self, fire_immediately: bool = False) -> None:
        self.stop()
        delay = 0.0 if fire_immediately else self.period
        self._event = self.sim.schedule(delay, self._tick, label=self.name)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period: float, reschedule: bool = True) -> None:
        """Change the period; optionally re-arm the next tick with it.

        Rescheduling preserves the phase already elapsed in the current
        cycle: the next tick moves to ``previous_expiry - old_period +
        new_period`` (clamped to now).  Arming a full new period from
        ``now`` instead would overstate the first interval after every
        mid-cycle change — e.g. the first optimized Query delay in the
        §4.4 timer sweep.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        old_period = self.period
        self.period = period
        if reschedule and self.running:
            cycle_start = self._event.time - old_period
            self._event.cancel()
            self._event = self.sim.schedule_at(
                max(self.sim.now, cycle_start + period), self._tick, label=self.name
            )

    def _tick(self) -> None:
        self._event = self.sim.schedule(self.period, self._tick, label=self.name)
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "idle"
        return f"<PeriodicTimer {self.name} period={self.period} {state}>"
