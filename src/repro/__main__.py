"""``python -m repro`` — the experiment CLI (see :mod:`repro.cli`)."""

from .cli import main

main()
