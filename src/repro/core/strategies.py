"""The four multicast delivery approaches (paper §4.2.3, Table 1).

Combining the receive mechanism (A: local membership on the foreign
link / B: via the home agent) with the send mechanism (A: local
sending / B: tunnel to the home agent) yields the four approaches the
paper compares:

====================================  ===========  ===========
approach                              receive      send
====================================  ===========  ===========
1. Local group membership             local        local
2. Bi-directional tunnel              HA tunnel    HA tunnel
3. Uni-directional tunnel MH → HA     local        HA tunnel
4. Uni-directional tunnel HA → MH     HA tunnel    local
====================================  ===========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..mipv6 import DeliveryMode

__all__ = [
    "Approach",
    "LOCAL_MEMBERSHIP",
    "BIDIRECTIONAL_TUNNEL",
    "TUNNEL_MH_TO_HA",
    "TUNNEL_HA_TO_MH",
    "ALL_APPROACHES",
    "approach_for",
    "render_table1",
]


@dataclass(frozen=True)
class Approach:
    """One cell of Table 1."""

    key: str
    number: int
    title: str
    recv_mode: DeliveryMode
    send_mode: DeliveryMode
    #: Paper figure illustrating the mechanism (where one exists).
    figures: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.number}. {self.title} "
            f"(recv={self.recv_mode.value}, send={self.send_mode.value})"
        )


LOCAL_MEMBERSHIP = Approach(
    key="local",
    number=1,
    title="Local group membership on foreign link",
    recv_mode=DeliveryMode.LOCAL,
    send_mode=DeliveryMode.LOCAL,
    figures=("Figure 2",),
)

BIDIRECTIONAL_TUNNEL = Approach(
    key="bidir",
    number=2,
    title="Bi-directional tunnel between home agent and mobile host",
    recv_mode=DeliveryMode.HA_TUNNEL,
    send_mode=DeliveryMode.HA_TUNNEL,
    figures=("Figure 3", "Figure 4"),
)

TUNNEL_MH_TO_HA = Approach(
    key="ut-mh-ha",
    number=3,
    title="Uni-directional tunnel from mobile host to home agent",
    recv_mode=DeliveryMode.LOCAL,
    send_mode=DeliveryMode.HA_TUNNEL,
    figures=("Figure 2", "Figure 4"),
)

TUNNEL_HA_TO_MH = Approach(
    key="ut-ha-mh",
    number=4,
    title="Uni-directional tunnel from home agent to mobile host",
    recv_mode=DeliveryMode.HA_TUNNEL,
    send_mode=DeliveryMode.LOCAL,
    figures=("Figure 3",),
)

ALL_APPROACHES: List[Approach] = [
    LOCAL_MEMBERSHIP,
    BIDIRECTIONAL_TUNNEL,
    TUNNEL_MH_TO_HA,
    TUNNEL_HA_TO_MH,
]

_BY_MODES: Dict[Tuple[DeliveryMode, DeliveryMode], Approach] = {
    (a.send_mode, a.recv_mode): a for a in ALL_APPROACHES
}


def approach_for(send_mode: DeliveryMode, recv_mode: DeliveryMode) -> Approach:
    """Table 1 lookup: (send, receive) mechanism pair -> approach."""
    return _BY_MODES[(send_mode, recv_mode)]


def render_table1() -> str:
    """ASCII rendering of Table 1 (receive across, send down)."""
    recv_modes = [DeliveryMode.LOCAL, DeliveryMode.HA_TUNNEL]
    send_modes = [DeliveryMode.LOCAL, DeliveryMode.HA_TUNNEL]
    header = ["send \\ receive", "A: local", "B: via tunnel"]
    rows = [header]
    labels = {DeliveryMode.LOCAL: "A: local", DeliveryMode.HA_TUNNEL: "B: via tunnel"}
    for send in send_modes:
        row = [labels[send]]
        for recv in recv_modes:
            row.append(approach_for(send, recv).title)
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("-" * (sum(widths) + 4))
    return "\n".join(lines)
