"""MLD timer optimization study (paper §4.4).

The paper proposes decreasing the MLD Query Interval T_Query (never
below the Maximum Response Delay T_RespDel, footnote 5) to cut the join
and leave delays of mobile receivers, arguing that "the bandwidth cost
for this tuning step is small, compared with the bandwidth saving due
to a lower leave delay".

:func:`run_timer_sweep` measures, per candidate T_Query:

* the join delay of a receiver that *waits for the next Query* (the
  slow path the optimization targets — unsolicited Reports disabled),
* the leave delay (membership expiry after the receiver left),
* the wasted multicast bytes forwarded onto the abandoned link during
  the leave delay (the saving),
* the MLD signaling bytes per second network-wide (the cost),

together with the closed-form expectations from
:mod:`repro.analysis.delays`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.delays import (
    expected_join_delay_wait_for_query,
    expected_leave_delay,
)
from ..analysis.tables import fmt_bytes, fmt_float, fmt_seconds, render_table
from ..campaign import CampaignCell, CampaignRunner
from ..mld import MldConfig
from ..sim import RngRegistry
from .scenario import PaperScenario, ScenarioConfig
from .strategies import LOCAL_MEMBERSHIP

__all__ = [
    "TimerSweepPoint",
    "run_timer_sweep",
    "render_sweep",
    "timer_point_run",
    "timer_sweep_cells",
]


@dataclass
class TimerSweepPoint:
    """Aggregated measurements for one Query Interval setting."""

    query_interval: float
    t_mli: float
    join_delays: List[float]
    leave_delays: List[float]
    wasted_bytes: List[int]
    mld_bytes_per_s: List[float]
    analytic_join: float
    analytic_leave: float

    @property
    def mean_join_delay(self) -> Optional[float]:
        return _mean(self.join_delays)

    @property
    def mean_leave_delay(self) -> Optional[float]:
        return _mean(self.leave_delays)

    @property
    def mean_wasted_bytes(self) -> Optional[float]:
        return _mean(self.wasted_bytes)

    @property
    def mean_mld_bytes_per_s(self) -> Optional[float]:
        return _mean(self.mld_bytes_per_s)

    def as_row(self) -> Dict[str, Any]:
        return {
            "query_interval": self.query_interval,
            "t_mli": self.t_mli,
            "join_delay": self.mean_join_delay,
            "analytic_join": self.analytic_join,
            "leave_delay": self.mean_leave_delay,
            "analytic_leave": self.analytic_leave,
            "wasted_bytes": self.mean_wasted_bytes,
            "mld_rate": self.mean_mld_bytes_per_s,
        }


def _mean(values: Sequence) -> Optional[float]:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def timer_sweep_cells(
    query_intervals: Sequence[float] = (10.0, 25.0, 60.0, 125.0),
    seeds: Sequence[int] = (0, 1, 2),
    move_link: str = "L6",
    base_mld: Optional[MldConfig] = None,
    packet_interval: float = 0.1,
) -> List[CampaignCell]:
    """The §4.4 campaign grid: one cell per (T_Query, seed)."""
    base = asdict(base_mld) if base_mld is not None else None
    return [
        CampaignCell(
            "timers.point",
            {
                "query_interval": qi,
                "seed": seed,
                "move_link": move_link,
                "packet_interval": packet_interval,
                "base_mld": base,
            },
        )
        for qi in query_intervals
        for seed in seeds
    ]


def run_timer_sweep(
    query_intervals: Sequence[float] = (10.0, 25.0, 60.0, 125.0),
    seeds: Sequence[int] = (0, 1, 2),
    move_link: str = "L6",
    base_mld: Optional[MldConfig] = None,
    packet_interval: float = 0.1,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
) -> List[TimerSweepPoint]:
    """Sweep T_Query and measure join/leave delay and bandwidth trade-off.

    Per (interval, seed): Receiver 3 moves from Link 4 to ``move_link``
    at a seed-randomized phase within the query cycle (so attachment is
    uniform within the cycle, matching the analytic model); unsolicited
    Reports are disabled to expose the wait-for-query path.

    The (interval, seed) cells execute through the campaign engine:
    pass ``jobs``/``cache_dir`` (or a preconfigured ``runner``) to
    shard them across processes and reuse cached cells.
    """
    base = base_mld or MldConfig()
    if runner is None:
        runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir)
    cells = timer_sweep_cells(
        query_intervals, seeds, move_link, base_mld, packet_interval
    )
    rows = iter(runner.run(cells).require_success().results())

    points: List[TimerSweepPoint] = []
    for qi in query_intervals:
        mld = replace(
            base.with_query_interval(qi), unsolicited_reports_on_move=False
        )
        point = TimerSweepPoint(
            query_interval=qi,
            t_mli=mld.multicast_listener_interval,
            join_delays=[],
            leave_delays=[],
            wasted_bytes=[],
            mld_bytes_per_s=[],
            analytic_join=expected_join_delay_wait_for_query(mld),
            analytic_leave=expected_leave_delay(mld),
        )
        for _seed in seeds:
            # cells() order is the same qi x seed nesting as this loop
            row = next(rows)
            point.join_delays.append(row["join_delay"])
            point.leave_delays.append(row["leave_delay"])
            if row["wasted_bytes"] is not None:
                point.wasted_bytes.append(row["wasted_bytes"])
            point.mld_bytes_per_s.append(row["mld_bytes_per_s"])
        points.append(point)
    return points


def timer_point_run(
    query_interval: float,
    seed: int = 0,
    move_link: str = "L6",
    packet_interval: float = 0.1,
    base_mld: Optional[MldConfig] = None,
) -> Dict[str, Any]:
    """One (T_Query, seed) measurement — the ``timers.point`` task body."""
    base = base_mld or MldConfig()
    mld = replace(
        base.with_query_interval(query_interval), unsolicited_reports_on_move=False
    )
    t_mli = mld.multicast_listener_interval
    sc = PaperScenario(
        ScenarioConfig(
            approach=LOCAL_MEMBERSHIP,
            seed=seed,
            mld=mld,
            packet_interval=packet_interval,
        )
    )
    sc.converge()
    # Uniform phase within the query cycle so E[wait] = T_Query / 2.
    phase = RngRegistry(seed).uniform("sweep-phase", 0.0, query_interval)
    move_at = sc.config.converge_until + 5.0 + phase
    before = sc.metrics.snapshot()
    sc.move("R3", move_link, at=move_at)
    horizon = move_at + t_mli + query_interval + 30.0
    sc.run_until(horizon)

    leave = sc.leave_delay("L4", move_at)
    after = sc.metrics.snapshot()
    delta = after.delta(before)
    duration = after.time - before.time
    sc.finish()
    return {
        "query_interval": query_interval,
        "seed": seed,
        "t_mli": t_mli,
        "join_delay": sc.join_delay("R3", move_at),
        "leave_delay": leave,
        "wasted_bytes": delta.bytes_on("L4", "mcast_data") if leave is not None else None,
        "mld_bytes_per_s": delta.total("mld") / duration if duration else 0.0,
    }


def render_sweep(points: Sequence[TimerSweepPoint]) -> str:
    """Table of the sweep, simulated vs analytic."""
    return render_table(
        [p.as_row() for p in points],
        [
            ("query_interval", "T_Query", fmt_float(0)),
            ("t_mli", "T_MLI", fmt_float(0)),
            ("join_delay", "join (sim)", fmt_seconds),
            ("analytic_join", "join (model)", fmt_seconds),
            ("leave_delay", "leave (sim)", fmt_seconds),
            ("analytic_leave", "leave (model)", fmt_seconds),
            ("wasted_bytes", "wasted on L4", fmt_bytes),
            ("mld_rate", "MLD B/s", fmt_float(1)),
        ],
        title="MLD timer optimization (paper §4.4): T_Query sweep",
    )
