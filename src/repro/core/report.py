"""Full evaluation report generator.

Runs the complete experiment battery (Figures 1–4, Table 1 wiring, the
§4.3 comparison with claim checks, the §4.4 timer sweep, and the
§4.3.2 scaling sweeps) and emits one Markdown report — the programmatic
equivalent of EXPERIMENTS.md for arbitrary seeds/configurations.

Used by ``python -m repro report`` and by downstream users who want a
one-call reproduction artifact::

    from repro.core.report import generate_report
    text = generate_report(seed=7)
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from ..analysis import fmt_seconds, render_figure
from ..mld import MldConfig
from .comparison import run_full_comparison
from .paper_topology import ROUTER_LINKS
from .scaling import render_scaling, run_ha_load_vs_groups, run_ha_load_vs_mobiles
from .scenario import PaperScenario, ScenarioConfig
from .strategies import BIDIRECTIONAL_TUNNEL, LOCAL_MEMBERSHIP, render_table1
from .timer_optimization import render_sweep, run_timer_sweep

__all__ = ["generate_report"]


def _section(out: io.StringIO, title: str) -> None:
    out.write(f"\n## {title}\n\n")


def _code(out: io.StringIO, text: str) -> None:
    out.write("```\n")
    out.write(text.rstrip("\n"))
    out.write("\n```\n")


def generate_report(
    seed: int = 0,
    mld: Optional[MldConfig] = None,
    timer_intervals: Sequence[float] = (10.0, 25.0, 60.0, 125.0),
    timer_seeds: Sequence[int] = (0, 1, 2),
    include_scaling: bool = True,
) -> str:
    """Run every experiment and return the Markdown report."""
    out = io.StringIO()
    out.write(
        "# Reproduction report — Mobile IPv6 / PIM-DM interoperation "
        f"(seed {seed})\n"
    )

    # -- figures ---------------------------------------------------------
    _section(out, "Figure 1 — initial distribution tree")
    fig1 = PaperScenario(ScenarioConfig(seed=seed, approach=LOCAL_MEMBERSHIP))
    fig1.converge()
    _code(out, render_figure(fig1.current_tree(), "L1", ROUTER_LINKS,
                             title="tree for (S on Link 1, G)"))
    out.write(
        f"\nasserts during convergence: {fig1.metrics.assert_count()}; "
        f"bytes on off-tree links L5/L6: "
        f"{fig1.net.stats.link_bytes('L5', 'mcast_data')}/"
        f"{fig1.net.stats.link_bytes('L6', 'mcast_data')}\n"
    )

    _section(out, "Figure 2 — mobile receiver, local membership")
    fig2 = PaperScenario(ScenarioConfig(seed=seed, approach=LOCAL_MEMBERSHIP))
    fig2.converge()
    fig2.move("R3", "L6", at=40.0)
    fig2.run_until(40.0 + 260.0 + 30.0)
    out.write(
        f"join delay {fmt_seconds(fig2.join_delay('R3', 40.0))}; "
        f"leave delay {fmt_seconds(fig2.leave_delay('L4', 40.0))} "
        f"(bound: T_MLI = 260 s)\n"
    )

    _section(out, "Figures 3 & 4 — tunnels")
    fig3 = PaperScenario(ScenarioConfig(seed=seed, approach=BIDIRECTIONAL_TUNNEL))
    fig3.converge()
    fig3.move("R3", "L1", at=40.0)
    fig3.move("S", "L6", at=40.0)
    fig3.run_until(100.0)
    d, a = fig3.paper.router("D"), fig3.paper.router("A")
    coa = fig3.paper.sender.care_of_address
    out.write(
        f"Router D tunneled {d.tunneled_to_mobiles} datagrams to R3; "
        f"Router A reverse-tunneled {a.reverse_tunneled} from S; "
        f"new (CoA,G) entries after the sender move: "
        f"{fig3.metrics.entries_created(source=coa, since=40.0)}\n"
    )

    # -- table 1 ---------------------------------------------------------
    _section(out, "Table 1 — the four approaches")
    _code(out, render_table1())

    # -- §4.3 comparison --------------------------------------------------
    _section(out, "§4.3 comparison (quantified)")
    report = run_full_comparison(seed=seed, mld=mld)
    _code(out, report.render())
    out.write(
        f"\n**All paper claims hold: {report.all_claims_hold}**\n"
    )

    # -- §4.4 timers -------------------------------------------------------
    _section(out, "§4.4 MLD timer optimization")
    points = run_timer_sweep(
        query_intervals=tuple(timer_intervals), seeds=tuple(timer_seeds)
    )
    _code(out, render_sweep(points))

    # -- scaling -----------------------------------------------------------
    if include_scaling:
        _section(out, "§4.3.2 home-agent load scaling")
        _code(out, render_scaling(
            run_ha_load_vs_mobiles(counts=(1, 2, 4, 8), seed=seed), "mobiles"
        ))
        _code(out, render_scaling(
            run_ha_load_vs_groups(counts=(1, 2, 4), seed=seed), "groups"
        ))

    return out.getvalue()
