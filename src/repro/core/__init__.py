"""The paper's contribution: delivery strategies, scenarios, comparison."""

from .adaptive import AdaptiveStrategyController
from .comparison import (
    ComparisonReport,
    comparison_cells,
    receiver_mobility_run,
    run_full_comparison,
    sender_mobility_run,
)
from .metrics import ScenarioMetrics, StatsSnapshot, per_hop_latency
from .paper_topology import (
    HOME_AGENT_OF_LINK,
    HOST_HOMES,
    LINK_PREFIXES,
    ROUTER_LINKS,
    PaperNetwork,
    build_paper_network,
)
from .fluidstudy import (
    DEFAULT_PROBE_INTERVAL,
    fluid_cell,
    render_fluid_report,
    run_fluid_study,
)
from .report import generate_report
from .scalestudy import (
    DEFAULT_SIZES,
    render_scale_report,
    run_scale_sweep,
    scale_cell,
    scale_grid,
)
from .scaling import (
    ha_load_groups_cell,
    ha_load_mobiles_cell,
    ha_load_rate_cell,
    render_scaling,
    run_ha_load_vs_groups,
    run_ha_load_vs_mobiles,
    run_ha_load_vs_rate,
)
from .scenario import PaperScenario, ScenarioConfig
from .strategies import (
    ALL_APPROACHES,
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    TUNNEL_HA_TO_MH,
    TUNNEL_MH_TO_HA,
    Approach,
    approach_for,
    render_table1,
)
from .timer_optimization import (
    TimerSweepPoint,
    render_sweep,
    run_timer_sweep,
    timer_point_run,
    timer_sweep_cells,
)

__all__ = [
    "ALL_APPROACHES",
    "AdaptiveStrategyController",
    "HOME_AGENT_OF_LINK",
    "Approach",
    "BIDIRECTIONAL_TUNNEL",
    "ComparisonReport",
    "DEFAULT_PROBE_INTERVAL",
    "DEFAULT_SIZES",
    "HOST_HOMES",
    "LINK_PREFIXES",
    "LOCAL_MEMBERSHIP",
    "PaperNetwork",
    "PaperScenario",
    "ROUTER_LINKS",
    "ScenarioConfig",
    "ScenarioMetrics",
    "StatsSnapshot",
    "TUNNEL_HA_TO_MH",
    "TUNNEL_MH_TO_HA",
    "TimerSweepPoint",
    "approach_for",
    "build_paper_network",
    "comparison_cells",
    "fluid_cell",
    "generate_report",
    "ha_load_groups_cell",
    "ha_load_mobiles_cell",
    "ha_load_rate_cell",
    "per_hop_latency",
    "receiver_mobility_run",
    "render_fluid_report",
    "render_scale_report",
    "render_scaling",
    "render_sweep",
    "render_table1",
    "run_fluid_study",
    "run_full_comparison",
    "run_ha_load_vs_groups",
    "run_ha_load_vs_mobiles",
    "run_ha_load_vs_rate",
    "run_scale_sweep",
    "run_timer_sweep",
    "scale_cell",
    "scale_grid",
    "sender_mobility_run",
    "timer_point_run",
    "timer_sweep_cells",
]
