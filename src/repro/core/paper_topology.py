"""The paper's evaluation network (Figure 1).

Six links, five routers (each a PIM-DM router *and* home agent, §4.2),
four hosts:

* Link 1: Sender S, Receiver 1, Router A          (HA of Link 1: A)
* Link 2: Router A, Router B, Router C, Receiver 2 (HA of Link 2: B)
* Link 3: Router B, Router C, Router D, Router E   (HA of Link 3: C)
* Link 4: Router D, Receiver 3                     (HA of Link 4: D)
* Link 5: Router D                                 (HA of Link 5: D)
* Link 6: Router E                                 (HA of Link 6: E)

Routers B and C attach in parallel between Links 2 and 3 — the pair
whose parallel forwarding exercises the PIM-DM assert election (§3.1).
See DESIGN.md §3 for the inference argument behind this reading of
Figure 1.

Expected initial distribution tree for (S on Link 1, G), matching the
figure: Link 1 → A → Link 2 → (B‖C, assert-elected) → Link 3 → D →
Link 4; Links 5 and 6 stay off-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mipv6 import DeliveryMode, HomeAgent, MobileIpv6Config, MobileNode
from ..mld import MldConfig
from ..net import Address, Link, Network, make_multicast_group
from ..pimdm import PimDmConfig

__all__ = [
    "HOME_AGENT_OF_LINK",
    "LINK_PREFIXES",
    "PaperNetwork",
    "ROUTER_LINKS",
    "build_paper_network",
]

#: Per-link IPv6 prefixes (Link i gets 2001:db8:i::/64).
LINK_PREFIXES: Dict[str, str] = {
    f"L{i}": f"2001:db8:{i}::/64" for i in range(1, 7)
}

#: Router attachment map inferred from Figure 1 (see module docstring).
ROUTER_LINKS: Dict[str, List[str]] = {
    "A": ["L1", "L2"],
    "B": ["L2", "L3"],
    "C": ["L2", "L3"],
    "D": ["L3", "L4", "L5"],
    "E": ["L3", "L6"],
}

#: Interface identifiers for the routers (A=1 ... E=5) on every link.
ROUTER_HOST_IDS: Dict[str, int] = {"A": 1, "B": 2, "C": 3, "D": 4, "E": 5}

#: Home agent of each link (paper §4.2: "Router A is home agent on
#: Link 1, Router B on Link 2, Router C on Link 3, Router D on Link 4
#: and 5, and Router E on Link 6").
HOME_AGENT_OF_LINK: Dict[str, str] = {
    "L1": "A",
    "L2": "B",
    "L3": "C",
    "L4": "D",
    "L5": "D",
    "L6": "E",
}

#: (home link, home agent, interface id) for each host of Figure 1.
HOST_HOMES: Dict[str, tuple] = {
    "S": ("L1", "A", 100),
    "R1": ("L1", "A", 101),
    "R2": ("L2", "B", 102),
    "R3": ("L4", "D", 103),
}


@dataclass
class PaperNetwork:
    """Handles to everything in the built Figure 1 network."""

    net: Network
    group: Address
    routers: Dict[str, HomeAgent] = field(default_factory=dict)
    hosts: Dict[str, MobileNode] = field(default_factory=dict)

    # -- sugar ----------------------------------------------------------
    def link(self, name: str) -> Link:
        return self.net.link(name)

    def router(self, name: str) -> HomeAgent:
        return self.routers[name]

    def host(self, name: str) -> MobileNode:
        return self.hosts[name]

    @property
    def sender(self) -> MobileNode:
        return self.hosts["S"]

    @property
    def receivers(self) -> List[MobileNode]:
        return [self.hosts[n] for n in ("R1", "R2", "R3")]

    def add_mobile_host(
        self,
        name: str,
        home_link_name: str,
        host_id: int,
        recv_mode: DeliveryMode = DeliveryMode.LOCAL,
        send_mode: DeliveryMode = DeliveryMode.LOCAL,
        mld_config: Optional[MldConfig] = None,
        mipv6_config: Optional[MobileIpv6Config] = None,
    ) -> MobileNode:
        """Add an extra mobile host homed on ``home_link_name``.

        The home agent is the link's designated home agent per the paper's
        assignment (A on L1, B on L2, C on L3, D on L4/L5, E on L6).  Used
        by the system-load scaling experiments (§4.3.2: "the system load
        of a single home agent increases with the number of mobile hosts
        it must support").
        """
        ha_name = HOME_AGENT_OF_LINK[home_link_name]
        home_link = self.net.link(home_link_name)
        ha = self.routers[ha_name]
        host = MobileNode(
            self.net.sim,
            name,
            tracer=self.net.tracer,
            rng=self.net.rng,
            home_link=home_link,
            home_agent_address=ha.address_on(home_link),
            host_id=host_id,
            config=mipv6_config,
            mld_config=mld_config,
            recv_mode=recv_mode,
            send_mode=send_mode,
        )
        self.net.register_node(host)
        self.hosts[name] = host
        return host

    def tree_links(self, source: Address, group: Address) -> Dict[str, List[str]]:
        """Per-router forwarding links — the live distribution tree."""
        return {
            name: router.pim.forwarding_links(source, group)
            for name, router in sorted(self.routers.items())
        }


def build_paper_network(
    seed: int = 0,
    mld_config: Optional[MldConfig] = None,
    pim_config: Optional[PimDmConfig] = None,
    mipv6_config: Optional[MobileIpv6Config] = None,
    recv_mode: DeliveryMode = DeliveryMode.LOCAL,
    send_mode: DeliveryMode = DeliveryMode.LOCAL,
    link_delay: float = 0.5e-3,
    link_bandwidth_bps: float = 100e6,
) -> PaperNetwork:
    """Construct the Figure 1 network with all protocol engines wired up.

    ``recv_mode``/``send_mode`` select the multicast delivery approach
    every mobile host will use while away from home (Table 1 axes).
    """
    net = Network(seed=seed)
    group = make_multicast_group(1)
    paper = PaperNetwork(net=net, group=group)

    for name, prefix in LINK_PREFIXES.items():
        net.add_link(name, prefix, delay=link_delay, bandwidth_bps=link_bandwidth_bps)

    for name, link_names in ROUTER_LINKS.items():
        router = HomeAgent(
            net.sim,
            name,
            tracer=net.tracer,
            rng=net.rng,
            pim_config=pim_config,
            mld_config=mld_config,
            mipv6_config=mipv6_config,
        )
        for link_name in link_names:
            link = net.link(link_name)
            router.attach_to(link, link.prefix.address_for_host(ROUTER_HOST_IDS[name]))
        net.register_node(router)
        net.on_start(router.start)
        paper.routers[name] = router

    for name, (home_link_name, ha_name, host_id) in HOST_HOMES.items():
        home_link = net.link(home_link_name)
        ha = paper.routers[ha_name]
        host = MobileNode(
            net.sim,
            name,
            tracer=net.tracer,
            rng=net.rng,
            home_link=home_link,
            home_agent_address=ha.address_on(home_link),
            host_id=host_id,
            config=mipv6_config,
            mld_config=mld_config,
            recv_mode=recv_mode,
            send_mode=send_mode,
        )
        net.register_node(host)
        paper.hosts[name] = host

    return paper
