"""Adaptive delivery-strategy selection.

The paper concludes (§5) that no single approach wins everywhere:

* local group membership "is not a good solution for highly mobile
  hosts" (every move costs a join delay / a tree rebuild), while
* "a bi-directional tunnel is interesting for highly mobile hosts,
  since no significant join and leave delay occurs" — at the price of
  suboptimal routing and home-agent load.

:class:`AdaptiveStrategyController` operationalizes that advice: it
watches a mobile node's observed handoff rate over a sliding window and
switches the node's delivery modes at runtime — local membership while
the node is sedentary, home-agent tunneling once it becomes highly
mobile, and back again when it settles down (with hysteresis so it
doesn't flap).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..mipv6 import DeliveryMode, MobileNode
from ..sim import PeriodicTimer

__all__ = ["AdaptiveStrategyController"]


class AdaptiveStrategyController:
    """Switches a mobile node's strategy based on its mobility rate."""

    def __init__(
        self,
        node: MobileNode,
        window: float = 300.0,
        high_rate: float = 2.0,
        low_rate: float = 0.5,
        check_interval: float = 10.0,
    ) -> None:
        """
        Parameters
        ----------
        window:
            Sliding window over which moves are counted (s).
        high_rate / low_rate:
            Moves per ``window`` above which the node switches to the
            bi-directional tunnel, and below which it returns to local
            membership.  ``low_rate < high_rate`` gives hysteresis.
        """
        if low_rate >= high_rate:
            raise ValueError("low_rate must be below high_rate (hysteresis)")
        self.node = node
        self.window = window
        self.high_rate = high_rate
        self.low_rate = low_rate
        self._move_times: Deque[float] = deque()
        self.switches = 0
        self._timer = PeriodicTimer(
            node.sim, self._evaluate, period=check_interval,
            name=f"{node.name}.adaptive",
        )
        # observe moves by wrapping the node's move_to
        self._orig_move_to = node.move_to
        node.move_to = self._observing_move_to  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _observing_move_to(self, link) -> None:
        if link is not self.node.current_link:
            self._move_times.append(self.node.sim.now)
        self._orig_move_to(link)

    # ------------------------------------------------------------------
    @property
    def current_rate(self) -> float:
        """Moves within the sliding window."""
        now = self.node.sim.now
        while self._move_times and self._move_times[0] < now - self.window:
            self._move_times.popleft()
        return float(len(self._move_times))

    def _evaluate(self) -> None:
        rate = self.current_rate
        tunneling = self.node.recv_mode is DeliveryMode.HA_TUNNEL
        if not tunneling and rate >= self.high_rate:
            self._switch(DeliveryMode.HA_TUNNEL, rate)
        elif tunneling and rate <= self.low_rate:
            self._switch(DeliveryMode.LOCAL, rate)

    def _switch(self, mode: DeliveryMode, rate: float) -> None:
        self.switches += 1
        self.node.trace(
            "mobility",
            event="adaptive-switch",
            mode=mode.value,
            window_moves=rate,
        )
        self.node.set_delivery_modes(recv_mode=mode, send_mode=mode)
