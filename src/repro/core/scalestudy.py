"""EXP-S1: the internet-scale state/message-load study (ROADMAP item 1).

Ground truth is Helmy's *State Analysis and Aggregation Study for
Multicast-based Micro Mobility* (PAPERS.md): per-group multicast state
grows with tree size and group count, and aggregating it wins more the
more state there is to aggregate.  Our analogue of the aggregation
axis is the per-(S,G) representation backend
(:mod:`repro.pimdm.state`): the modelled byte cost of the ``dict``
seed representation over the ``compact`` interned/bitset one is the
**aggregation gain**, and EXP-S1 pins its qualitative shape — the gain
rises with group count (and tree size), because every added group
replicates (S,G) + downstream rows across the tree while
unaggregatable state (neighbor tables, binding caches) stays put.
That is exactly Helmy's trend.

One campaign cell (:func:`scale_cell`, task ``scale.cell``) generates
a seeded topology (shared read-only across cells via the
:func:`repro.net.topogen.topo_graph` worker cache), homes a mobile
receiver population on its leaf links, runs flood/prune/join plus
seeded handovers, and reports deterministic metrics only — events,
state-entry counts (the peak RSS proxy), modelled state bytes under
both backends, and control-message load — so results are byte-stable
under ``jobs=1`` and ``jobs=N`` and cacheable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.tables import fmt_bytes, fmt_float, render_table
from ..campaign import CampaignGrid, CampaignRunner
from ..pimdm import PimDmConfig

__all__ = [
    "DEFAULT_SIZES",
    "render_scale_report",
    "run_scale_sweep",
    "scale_cell",
    "scale_grid",
]

#: Default topology-size axis: hierarchical trees from tens to >1000
#: routers (fanout=10, depth=3 → 1110: the EXP-S1 headline point).
DEFAULT_SIZES: List[Dict[str, Any]] = [
    {"depth": 2, "fanout": 5},     # 30 routers
    {"depth": 3, "fanout": 5},     # 155 routers
    {"depth": 3, "fanout": 8},     # 584 routers
    {"depth": 3, "fanout": 10},    # 1110 routers
]


def scale_cell(
    model: str = "hier",
    model_params: Optional[Dict[str, Any]] = None,
    receivers: int = 100,
    groups: int = 1,
    mobility: float = 0.0,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    duration: float = 30.0,
    packet_interval: float = 1.0,
    check_invariants: Optional[bool] = None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
    shards: int = 1,
    shard_executor: str = "process",
) -> Dict[str, Any]:
    """One scaling-study cell: generate, populate, run, measure.

    ``mobility`` is mean handovers per receiver over the measurement
    window.  Every reported value is a pure function of the parameters
    (no wall-clock fields), preserving the campaign determinism and
    cache contracts.  ``traffic_model="fluid"`` swaps the per-packet
    CBR flows for analytic rate integration (``repro.traffic.fluid``)
    and adds a ``traffic`` block to the result.  ``shards > 1`` splits
    the topology into regions executed by the conservative sharded
    kernel (:mod:`repro.sim.shard`) — packet mode only — and adds a
    ``shards`` block.
    """
    from ..invariants import InvariantMonitor, checking_enabled
    from ..net.topogen import build_network, topo_graph
    from ..traffic import make_traffic_model

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    if shards > 1:
        if traffic_model != "packet":
            raise ValueError(
                "sharded execution supports the packet traffic model only: "
                "the fluid engine integrates global rates and cannot be "
                "partitioned spatially (run fluid cells with shards=1)"
            )
        if check_invariants or (check_invariants is None and checking_enabled()):
            raise ValueError(
                "invariant checking is unsupported with shards > 1: the "
                "oracles audit one kernel's global state (disable "
                "--check-invariants or run with shards=1)"
            )
        from ..sim.shard.netrunner import run_sharded_scale_cell

        return run_sharded_scale_cell(
            model=model,
            model_params=model_params,
            receivers=receivers,
            groups=groups,
            mobility=mobility,
            backend=backend,
            seed=seed,
            warmup=warmup,
            duration=duration,
            packet_interval=packet_interval,
            shards=shards,
            executor=shard_executor,
        )

    spec = {"model": model, **(model_params or {})}
    graph = topo_graph(spec)
    built = build_network(
        graph, seed=seed, pim_config=PimDmConfig(state_backend=backend)
    )
    net = built.net
    monitor = None
    if check_invariants or (check_invariants is None and checking_enabled()):
        monitor = InvariantMonitor(net, escalate=True).attach()

    group_addrs = [built.make_group(g + 1) for g in range(groups)]
    leaf = graph.leaf_links
    sources = [
        built.place_source(f"s{g:03d}", link_name=leaf[g % len(leaf)])
        for g in range(groups)
    ]
    population = built.place_receivers(receivers)
    traffic = make_traffic_model(traffic_model, probe_interval=probe_interval)
    traffic.attach(net)
    net.start()
    for g, group in enumerate(group_addrs):
        built.schedule_joins(
            population[g::groups],
            group,
            start=1.0,
            spread=max(warmup - 2.0, 1.0),
            stream=f"topogen.joins.g{g}",
        )
        traffic.add_cbr(
            sources[g],
            group,
            packet_interval=packet_interval,
            flow=f"flow-g{g}",
        ).start(at=warmup / 2)
    moves = built.schedule_moves(
        population, mobility, start=warmup, horizon=warmup + duration
    )
    # mid-run snapshot so the peak-keeping state gauges see the full
    # tree, not whatever teardown/expiry leaves at the end
    net.sim.schedule_at(warmup + duration / 2, net.collect_state)
    net.run(until=warmup + duration)
    traffic.finish()
    net.collect_state()
    if monitor is not None:
        monitor.check()
    snap = net.stats.state_snapshot()
    gain = (
        snap["bytes"]["dict"] / snap["bytes"]["compact"]
        if snap["bytes"]["compact"]
        else 1.0
    )
    result: Dict[str, Any] = {
        "model": model,
        "model_params": dict(model_params or {}),
        "routers": len(graph.routers),
        "links": len(graph.links),
        "receivers": receivers,
        "groups": groups,
        "mobility": mobility,
        "moves": moves,
        "backend": backend,
        "seed": seed,
        "graph_digest": graph.digest(),
        "events": net.sim.events_dispatched,
        "state": snap,
        "aggregation_gain": round(gain, 4),
        "control_packets": {
            c: net.stats.total_packets(c) for c in ("pim", "mld", "mipv6")
        },
        "control_bytes": net.stats.signaling_bytes(),
        "mcast_packets": net.stats.total_packets("mcast_data"),
    }
    if traffic_model != "packet":
        # keep packet-mode cell payloads byte-identical (cache contract)
        result["traffic"] = traffic.describe()
        result["mcast_packets"] = round(result["mcast_packets"], 3)
        result["mcast_bytes"] = round(net.stats.total_bytes("mcast_data"), 3)
    return result


def scale_grid(
    sizes: Optional[Sequence[Dict[str, Any]]] = None,
    receivers: Sequence[int] = (100, 1000),
    groups: Sequence[int] = (1,),
    mobility: Sequence[float] = (0.0,),
    model: str = "hier",
    seed: int = 0,
    duration: float = 30.0,
    warmup: float = 10.0,
    packet_interval: float = 1.0,
    check_invariants: Optional[bool] = None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
    shards: int = 1,
    shard_executor: str = "process",
) -> CampaignGrid:
    """The EXP-S1 grid: topology sizes × receiver populations × group
    counts × mobility rates."""
    base: Dict[str, Any] = {
        "model": model,
        "seed": seed,
        "duration": duration,
        "warmup": warmup,
        "packet_interval": packet_interval,
    }
    if check_invariants is not None:
        base["check_invariants"] = check_invariants
    # non-default only: packet-mode cache keys stay byte-identical
    if traffic_model != "packet":
        base["traffic_model"] = traffic_model
        if probe_interval is not None:
            base["probe_interval"] = probe_interval
    # same contract for sharding: single-kernel cache keys unchanged
    if shards != 1:
        base["shards"] = shards
        if shard_executor != "process":
            base["shard_executor"] = shard_executor
    return CampaignGrid(
        "scale.cell",
        axes={
            "model_params": [dict(s) for s in (sizes or DEFAULT_SIZES)],
            "receivers": list(receivers),
            "groups": list(groups),
            "mobility": list(mobility),
        },
        base=base,
        name="scale-sweep",
    )


def run_scale_sweep(
    sizes: Optional[Sequence[Dict[str, Any]]] = None,
    receivers: Sequence[int] = (100, 1000),
    groups: Sequence[int] = (1,),
    mobility: Sequence[float] = (0.0,),
    model: str = "hier",
    seed: int = 0,
    duration: float = 30.0,
    warmup: float = 10.0,
    packet_interval: float = 1.0,
    check_invariants: Optional[bool] = None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
    shards: int = 1,
    shard_executor: str = "process",
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
) -> Dict[str, Any]:
    """Run EXP-S1 and assemble the scaling curves.

    The report carries the per-cell rows plus three machine-readable
    curves: state entries and modelled bytes vs. router count,
    control-message load vs. router count, and aggregation gain vs.
    receiver population / group count (the Helmy-shaped trend).
    """
    grid = scale_grid(
        sizes=sizes,
        receivers=receivers,
        groups=groups,
        mobility=mobility,
        model=model,
        seed=seed,
        duration=duration,
        warmup=warmup,
        packet_interval=packet_interval,
        check_invariants=check_invariants,
        traffic_model=traffic_model,
        probe_interval=probe_interval,
        shards=shards,
        shard_executor=shard_executor,
    )
    if runner is None:
        runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir, master_seed=seed)
    rows = runner.run(grid.cells()).require_success().results()
    rows = sorted(
        rows,
        key=lambda r: (r["routers"], r["receivers"], r["groups"], r["mobility"]),
    )

    def curve(xkey: str, ykeys, rows_subset) -> List[Dict[str, Any]]:
        out = []
        for row in rows_subset:
            point = {xkey: row[xkey]}
            for label, fn in ykeys.items():
                point[label] = fn(row)
            out.append(point)
        return out

    max_receivers = max(r["receivers"] for r in rows)
    max_routers = max(r["routers"] for r in rows)
    base_groups = min(r["groups"] for r in rows)
    base_mobility = min(r["mobility"] for r in rows)
    vs_nodes = [
        r
        for r in rows
        if r["receivers"] == max_receivers
        and r["groups"] == base_groups
        and r["mobility"] == base_mobility
    ]
    vs_receivers = [
        r
        for r in rows
        if r["routers"] == max_routers
        and r["groups"] == base_groups
        and r["mobility"] == base_mobility
    ]
    vs_groups = [
        r
        for r in rows
        if r["routers"] == max_routers
        and r["receivers"] == max_receivers
        and r["mobility"] == base_mobility
    ]
    report = {
        "experiment": "EXP-S1",
        "model": model,
        "seed": seed,
        "cells": len(rows),
        "total_receivers": sum(r["receivers"] for r in rows),
        "max_routers": max_routers,
        "rows": rows,
        "curves": {
            "state_vs_nodes": curve(
                "routers",
                {
                    "state_entries": lambda r: r["state"]["total_entries"],
                    "state_bytes_dict": lambda r: r["state"]["bytes"]["dict"],
                    "state_bytes_compact": lambda r: r["state"]["bytes"]["compact"],
                    "events": lambda r: r["events"],
                },
                vs_nodes,
            ),
            "messages_vs_nodes": curve(
                "routers",
                {
                    "pim_packets": lambda r: r["control_packets"]["pim"],
                    "mld_packets": lambda r: r["control_packets"]["mld"],
                    "mipv6_packets": lambda r: r["control_packets"]["mipv6"],
                    "control_bytes": lambda r: r["control_bytes"],
                },
                vs_nodes,
            ),
            "gain_vs_receivers": curve(
                "receivers",
                {"aggregation_gain": lambda r: r["aggregation_gain"]},
                vs_receivers,
            ),
            "gain_vs_groups": curve(
                "groups",
                {"aggregation_gain": lambda r: r["aggregation_gain"]},
                vs_groups,
            ),
        },
    }
    # Helmy's qualitative result: aggregation wins more the more
    # per-group state there is to aggregate.  Our per-group axis is
    # the group count (each added group replicates (S,G) + downstream
    # rows across the tree while neighbor/binding state stays fixed),
    # so the trend is pinned on gain-vs-groups; fall back to the
    # topology-size curve when the sweep has a single group count.
    gains = [p["aggregation_gain"] for p in report["curves"]["gain_vs_groups"]]
    if len(gains) < 2:
        gains = [
            p["aggregation_gain"]
            for p in curve(
                "routers",
                {"aggregation_gain": lambda r: r["aggregation_gain"]},
                vs_nodes,
            )
        ]
    report["gain_trend_increasing"] = (
        len(gains) >= 2
        and all(b >= a for a, b in zip(gains, gains[1:]))
        and gains[-1] > gains[0]
    )
    return report


def render_scale_report(report: Dict[str, Any]) -> str:
    """Human-readable EXP-S1 tables."""
    flat = [
        {
            **{
                k: r[k]
                for k in ("routers", "receivers", "groups", "mobility", "events")
            },
            "entries": r["state"]["total_entries"],
            "bytes_dict": r["state"]["bytes"]["dict"],
            "bytes_compact": r["state"]["bytes"]["compact"],
            "gain": r["aggregation_gain"],
            "pim": r["control_packets"]["pim"],
            "mld": r["control_packets"]["mld"],
        }
        for r in report["rows"]
    ]
    table = render_table(
        flat,
        [
            "routers",
            "receivers",
            "groups",
            ("mobility", "mobility", fmt_float(2)),
            "events",
            ("entries", "state entries"),
            ("bytes_dict", "bytes (dict)", fmt_bytes),
            ("bytes_compact", "bytes (compact)", fmt_bytes),
            ("gain", "gain", fmt_float(2)),
            ("pim", "pim pkts"),
            ("mld", "mld pkts"),
        ],
        title=(
            "EXP-S1 — state & message-load scaling "
            f"(model={report['model']}, {report['cells']} cells, "
            f"{report['total_receivers']} receivers aggregate)"
        ),
    )
    trend = (
        "increasing (matches Helmy)"
        if report["gain_trend_increasing"]
        else "flat/decreasing"
    )
    return f"{table}\naggregation-gain trend vs group count: {trend}"
