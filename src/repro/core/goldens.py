"""Canned Figure 1-4 runs: the repository's reference scenarios.

One place defines how each paper figure's scenario is executed, so the
profiler CLI (``python -m repro profile fig2``), the golden-trace
regression suite (``tests/goldens/``), and ad-hoc scripts all replay
*exactly* the same simulation for a given (figure, seed) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .scenario import PaperScenario, ScenarioConfig
from .strategies import BIDIRECTIONAL_TUNNEL, LOCAL_MEMBERSHIP, Approach

__all__ = ["CANNED_RUNS", "CannedRun", "run_canned"]


@dataclass(frozen=True)
class CannedRun:
    """Recipe for one figure: approach, optional move, and horizon."""

    approach: Approach
    #: (host, destination link) of the single mobility event, if any.
    move: Optional[Tuple[str, str]] = None
    move_at: Optional[float] = None
    run_until: Optional[float] = None


CANNED_RUNS: Dict[str, CannedRun] = {
    "fig1": CannedRun(LOCAL_MEMBERSHIP),
    # Figure 2 horizon covers the full leave delay (T_MLI = 260 s).
    "fig2": CannedRun(LOCAL_MEMBERSHIP, ("R3", "L6"), 40.0, 40.0 + 260.0 + 30.0),
    "fig3": CannedRun(BIDIRECTIONAL_TUNNEL, ("R3", "L1"), 40.0, 90.0),
    "fig4": CannedRun(BIDIRECTIONAL_TUNNEL, ("S", "L6"), 40.0, 100.0),
}


def run_canned(name: str, seed: int = 0) -> PaperScenario:
    """Execute one canned figure scenario to completion."""
    recipe = CANNED_RUNS[name]
    sc = PaperScenario(ScenarioConfig(seed=seed, approach=recipe.approach))
    sc.converge()
    if recipe.move is not None:
        host, link = recipe.move
        sc.move(host, link, at=recipe.move_at)
        sc.run_until(recipe.run_until)
    return sc
