"""Scenario harness on the paper's Figure 1 network.

:class:`PaperScenario` wires the Figure 1 topology with receiver
instrumentation and a CBR source at Sender S, provides the canned
phases every experiment shares (boot, application joins, traffic
start, tree convergence), and exposes the moves the paper analyzes
(Receiver 3 to Link 6 / Link 1, Sender S to Link 6 / Link 4, ...).

Timeline convention (defaults):

=========  ===========================================================
t = 0      protocol boot: PIM Hellos, MLD startup queries
t = 1      application joins (unsolicited Reports announce members)
t = 20     Sender S starts its CBR flow; flood-and-prune converges
t = 30     ``converge()`` returns; experiments schedule moves after
=========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mipv6 import MobileIpv6Config
from ..mld import MldConfig
from ..net import Address
from ..pimdm import PimDmConfig
from ..traffic import make_traffic_model
from ..workloads import ReceiverApp
from .metrics import ScenarioMetrics
from .paper_topology import PaperNetwork, build_paper_network
from .strategies import LOCAL_MEMBERSHIP, Approach

__all__ = ["ScenarioConfig", "PaperScenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs shared by all Figure 1 experiments."""

    approach: Approach = LOCAL_MEMBERSHIP
    seed: int = 0
    mld: Optional[MldConfig] = None
    pim: Optional[PimDmConfig] = None
    mipv6: Optional[MobileIpv6Config] = None
    #: CBR source parameters (20 pkt/s of 1000-byte payloads ≈ 160 kbit/s).
    packet_interval: float = 0.05
    payload_bytes: int = 1000
    #: traffic engine: "packet" (exact, per-datagram events — the
    #: default) or "fluid" (analytic rate integration between protocol
    #: events, sparse probes; see ``repro.traffic`` / docs/TRAFFIC.md).
    traffic_model: str = "packet"
    #: fluid-mode probe cadence; None means 100 x packet_interval.
    probe_interval: Optional[float] = None
    join_time: float = 1.0
    traffic_start: float = 20.0
    converge_until: float = 30.0
    link_delay: float = 0.5e-3
    link_bandwidth_bps: float = 100e6
    #: attach :mod:`repro.invariants` oracles in escalate mode.  None
    #: defers to the ``REPRO_CHECK_INVARIANTS`` environment variable
    #: (the ``--check-invariants`` CLI flag), which worker processes
    #: inherit — so campaign cells are audited too.
    check_invariants: Optional[bool] = None
    #: attach a :class:`repro.obs.spans.SpanRecorder` reconstructing
    #: handover/graft/assert transactions live from the trace stream.
    #: None defers to ``REPRO_TRACE_SPANS`` (same worker-inheritance
    #: contract as ``check_invariants``); the recorder subscribes to
    #: control-plane categories only and, when disabled, no listener
    #: exists at all — the record hot path is untouched.
    trace_spans: Optional[bool] = None
    #: simulator regions (:mod:`repro.sim.shard`).  The Figure 1 network
    #: is far too small to shard — only ``1`` is accepted here; sharded
    #: execution is an EXP-S1/EXP-P2 feature (``repro sweep scale
    #: --shards N``).  The field exists so scenario configs round-trip
    #: through campaign specs that carry a shard count.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards!r}")
        if self.shards != 1:
            raise ValueError(
                "the Figure 1 scenario harness runs on a single kernel; "
                "sharded execution is available on generated topologies "
                "via `repro sweep scale --shards N`"
            )


class PaperScenario:
    """One simulation run over the Figure 1 network."""

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        paper: Optional[PaperNetwork] = None,
    ) -> None:
        """``paper`` injects a pre-built Figure 1 network — e.g. one
        instantiated from :func:`repro.net.topogen.figure1_graph` via
        ``GeneratedTopology.as_paper_network()`` — in place of the
        hand-built :func:`build_paper_network`.  The injected network
        must have been constructed with the same seed and protocol
        configs as ``config`` carries; the generator-equivalence
        fixture (tests/net/test_topogen_equivalence.py) pins that the
        two constructions behave identically."""
        self.config = config or ScenarioConfig()
        cfg = self.config
        self.paper: PaperNetwork = paper or build_paper_network(
            seed=cfg.seed,
            mld_config=cfg.mld,
            pim_config=cfg.pim,
            mipv6_config=cfg.mipv6,
            recv_mode=cfg.approach.recv_mode,
            send_mode=cfg.approach.send_mode,
            link_delay=cfg.link_delay,
            link_bandwidth_bps=cfg.link_bandwidth_bps,
        )
        self.net = self.paper.net
        self.group: Address = self.paper.group
        self.traffic = make_traffic_model(
            cfg.traffic_model, probe_interval=cfg.probe_interval
        )
        self.traffic.attach(self.net)
        self.metrics = ScenarioMetrics(self.net, traffic=self.traffic)
        self.apps: Dict[str, ReceiverApp] = {
            name: ReceiverApp(self.paper.hosts[name]) for name in ("R1", "R2", "R3")
        }
        self.source = self.traffic.add_cbr(
            self.paper.sender,
            self.group,
            packet_interval=cfg.packet_interval,
            payload_bytes=cfg.payload_bytes,
            flow="S-flow",
        )
        self._converged = False
        self.invariants = None
        from ..invariants import InvariantMonitor, checking_enabled

        if cfg.check_invariants or (
            cfg.check_invariants is None and checking_enabled()
        ):
            self.invariants = InvariantMonitor(self.net, escalate=True).attach()
        self.spans = None
        from ..obs.spans import SpanRecorder, spans_enabled

        if cfg.trace_spans or (cfg.trace_spans is None and spans_enabled()):
            self.spans = SpanRecorder(approach=cfg.approach.key).attach(
                self.net.tracer
            )

    # ------------------------------------------------------------------
    # canned phases
    # ------------------------------------------------------------------
    def converge(self) -> None:
        """Boot protocols, join receivers, start traffic, build the tree."""
        if self._converged:
            return
        self._converged = True
        cfg = self.config
        self.net.start()
        for name in ("R1", "R2", "R3"):
            host = self.paper.hosts[name]
            self.net.sim.schedule_at(
                cfg.join_time, host.join_group, self.group, label=f"{name}.join"
            )
        self.source.start(at=cfg.traffic_start)
        self.net.run(until=cfg.converge_until)

    def run_until(self, time: float) -> None:
        self.net.run(until=time)

    def finish(self) -> None:
        """Close open spans and run the invariant liveness sweeps;
        raises on any invariant breach.

        No-op when neither a span recorder nor a monitor is attached,
        so every experiment can call it unconditionally at the end of
        its run.  Spans close at the last *event* time (not ``now``) so
        the live tree equals an offline replay of the same trace.
        """
        self.traffic.finish()
        if self.spans is not None:
            self.spans.finish()
        if self.invariants is not None:
            self.invariants.check()

    def run_for(self, duration: float) -> None:
        self.net.run(until=self.net.now + duration)

    @property
    def now(self) -> float:
        return self.net.now

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def move(self, host_name: str, link_name: str, at: Optional[float] = None) -> float:
        """Schedule (or perform) a host move; returns the move time."""
        host = self.paper.hosts[host_name]
        link = self.paper.link(link_name)
        when = at if at is not None else self.net.now
        if when <= self.net.now:
            host.move_to(link)
            return self.net.now
        self.net.sim.schedule_at(when, host.move_to, link, label=f"{host_name}.move")
        return when

    # ------------------------------------------------------------------
    # common result probes
    # ------------------------------------------------------------------
    def current_tree(self) -> Dict[str, list]:
        """Forwarding links per router for the sender's original flow."""
        return self.paper.tree_links(self.paper.sender.home_address, self.group)

    def tree_for_source(self, source: Address) -> Dict[str, list]:
        return self.paper.tree_links(source, self.group)

    def join_delay(self, receiver: str, move_time: float) -> Optional[float]:
        return self.apps[receiver].join_delay(move_time)

    def leave_delay(self, link_name: str, move_time: float) -> Optional[float]:
        return self.metrics.leave_delay(link_name, self.group, move_time)
