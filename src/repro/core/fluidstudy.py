"""EXP-S2: fluid vs packet traffic at scale (ROADMAP item 2).

The paper's §4.3 analysis is expressed in *rates*; per-packet events
cap a 10⁴-receiver EXP-S1 cell at ~47 s wall and put 10⁶ receivers
(~10⁹ packet events per simulated minute) out of reach.  EXP-S2
quantifies what the fluid engine (:mod:`repro.traffic.fluid`) buys:

* **data-plane event reduction** — packet mode transmits one datagram
  per link per ``packet_interval``; fluid mode transmits one *probe*
  per ``probe_interval`` and integrates the rest analytically.  The
  headline ratio compares data-plane transmissions (mcast/unicast data
  packets vs probe packets) at equal simulated traffic; total
  dispatched simulator events are reported alongside (the control
  plane — joins, hellos, timers — is identical in both modes, so the
  total-event ratio is smaller and scenario-dependent).
* **byte agreement** — fluid ``mcast_data`` bytes must match packet
  mode within tolerance (§ docs/TRAFFIC.md).
* **a completed 10⁶-receiver cell** — via ``receiver_weight``: each
  placed host stands for ``weight`` co-located receivers (MLD report
  suppression means co-located listeners add no protocol state or
  signaling; delivered bytes scale linearly).

Run via ``repro sweep fluid`` or the ``fluid.cell`` campaign task;
the committed study artefact lives at
``benchmarks/results/exp_s2_fluid.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.tables import fmt_bytes, fmt_float, render_table
from ..pimdm import PimDmConfig

__all__ = [
    "fluid_cell",
    "run_fluid_study",
    "render_fluid_report",
    "DEFAULT_PROBE_INTERVAL",
]

#: EXP-S2 probe cadence: sparse enough for a >=100x data-plane
#: reduction at the paper's 20 pkt/s rate, well under the 210 s PIM-DM
#: (S,G) data timeout.
DEFAULT_PROBE_INTERVAL = 30.0


def fluid_cell(
    model: str = "hier",
    model_params: Optional[Dict[str, Any]] = None,
    receivers: int = 1000,
    receiver_weight: int = 1,
    traffic_model: str = "fluid",
    groups: int = 1,
    mobility: float = 0.0,
    backend: str = "compact",
    seed: int = 0,
    warmup: float = 10.0,
    duration: float = 30.0,
    packet_interval: float = 0.05,
    payload_bytes: int = 1000,
    probe_interval: Optional[float] = DEFAULT_PROBE_INTERVAL,
) -> Dict[str, Any]:
    """One EXP-S2 cell: ``receivers`` hosts, each representing
    ``receiver_weight`` co-located receivers, under either traffic
    model.

    Unlike :func:`repro.core.scalestudy.scale_cell`, traffic starts
    *after* the join phase completes (at ``warmup``): the fluid model
    recomputes its rate table on every protocol-event timestamp, and
    join storms are cheapest while no flow is active.
    """
    from ..net.stats import FLUID_PROBE_CATEGORY
    from ..net.topogen import build_network, topo_graph
    from ..traffic import make_traffic_model

    spec = {"model": model, **(model_params or {})}
    graph = topo_graph(spec)
    built = build_network(
        graph, seed=seed, pim_config=PimDmConfig(state_backend=backend)
    )
    net = built.net
    group_addrs = [built.make_group(g + 1) for g in range(groups)]
    leaf = graph.leaf_links
    sources = [
        built.place_source(f"s{g:03d}", link_name=leaf[g % len(leaf)])
        for g in range(groups)
    ]
    population = built.place_receivers(receivers)
    traffic = make_traffic_model(traffic_model, probe_interval=probe_interval)
    traffic.attach(net)
    net.start()
    for g, group in enumerate(group_addrs):
        built.schedule_joins(
            population[g::groups],
            group,
            start=1.0,
            spread=max(warmup - 2.0, 1.0),
            stream=f"topogen.joins.g{g}",
        )
        traffic.add_cbr(
            sources[g],
            group,
            packet_interval=packet_interval,
            payload_bytes=payload_bytes,
            flow=f"flow-g{g}",
        ).start(at=warmup)
    moves = built.schedule_moves(
        population, mobility, start=warmup, horizon=warmup + duration
    )
    net.run(until=warmup + duration)
    traffic.finish()
    net.collect_state()

    stats = net.stats
    data_tx = stats.total_packets("mcast_data") + stats.total_packets(
        "unicast_data"
    )
    probe_tx = stats.total_packets(FLUID_PROBE_CATEGORY)
    result: Dict[str, Any] = {
        "model": model,
        "model_params": dict(model_params or {}),
        "traffic_model": traffic_model,
        "routers": len(graph.routers),
        "links": len(graph.links),
        "hosts": receivers,
        "receiver_weight": receiver_weight,
        "receivers": receivers * receiver_weight,
        "groups": groups,
        "mobility": mobility,
        "moves": moves,
        "seed": seed,
        "graph_digest": graph.digest(),
        "duration": duration,
        "packet_interval": packet_interval,
        "probe_interval": probe_interval,
        "events": net.sim.events_dispatched,
        # data-plane transmissions: analytic packet charges are floats,
        # real transmissions integers; keep both visible
        "data_transmissions": round(data_tx, 3),
        "probe_transmissions": probe_tx,
        "mcast_bytes": round(stats.total_bytes("mcast_data"), 3),
        "control_bytes": stats.signaling_bytes(),
        "state_entries": stats.state_snapshot()["total_entries"],
    }
    if traffic_model == "fluid":
        desc = traffic.describe()
        result["traffic"] = {
            "flows": desc["flows"],
            "probes_sent": desc["probes_sent"],
            "recomputes": desc["recomputes"],
            "delivered_bytes": round(
                desc["delivered_bytes"] * receiver_weight, 3
            ),
            "lost_bytes": {
                k: round(v, 3) for k, v in desc["lost_bytes"].items()
            },
        }
    return result


def run_fluid_study(
    sizes: Optional[Sequence[Dict[str, Any]]] = None,
    receivers: Sequence[int] = (1000, 10000),
    packet_cap: int = 10000,
    million_cell: bool = True,
    million_weight: int = 100,
    seed: int = 0,
    duration: float = 30.0,
    warmup: float = 10.0,
    packet_interval: float = 0.05,
    probe_interval: float = DEFAULT_PROBE_INTERVAL,
    mobility: float = 0.0,
) -> Dict[str, Any]:
    """EXP-S2: packet/fluid cell pairs plus the weighted million cell.

    For every receiver count up to ``packet_cap`` both engines run and
    the pair reports the data-plane event reduction and byte agreement;
    beyond the cap only fluid runs (that asymmetry is the point).
    """
    sizes = [dict(s) for s in (sizes or [{"depth": 3, "fanout": 10}])]
    pairs: List[Dict[str, Any]] = []
    for size in sizes:
        for count in receivers:
            common = dict(
                model_params=size,
                receivers=count,
                seed=seed,
                warmup=warmup,
                duration=duration,
                packet_interval=packet_interval,
                probe_interval=probe_interval,
                mobility=mobility,
            )
            fluid = fluid_cell(traffic_model="fluid", **common)
            row: Dict[str, Any] = {
                "model_params": size,
                "receivers": count,
                "fluid": fluid,
            }
            if count <= packet_cap:
                packet = fluid_cell(traffic_model="packet", **common)
                row["packet"] = packet
                probe_tx = max(fluid["probe_transmissions"], 1)
                row["data_event_reduction"] = round(
                    packet["data_transmissions"] / probe_tx, 2
                )
                row["total_event_reduction"] = round(
                    packet["events"] / max(fluid["events"], 1), 2
                )
                base = max(packet["mcast_bytes"], 1)
                row["mcast_bytes_rel_error"] = round(
                    abs(fluid["mcast_bytes"] - packet["mcast_bytes"]) / base, 6
                )
            pairs.append(row)
    study: Dict[str, Any] = {
        "exp": "EXP-S2",
        "seed": seed,
        "packet_interval": packet_interval,
        "probe_interval": probe_interval,
        "pairs": pairs,
    }
    if million_cell:
        hosts = max(r for r in receivers)
        study["million_cell"] = fluid_cell(
            model_params=sizes[-1],
            receivers=hosts,
            receiver_weight=million_weight,
            traffic_model="fluid",
            seed=seed,
            warmup=warmup,
            duration=duration,
            packet_interval=packet_interval,
            probe_interval=probe_interval,
            mobility=mobility,
        )
    return study


def render_fluid_report(study: Dict[str, Any]) -> str:
    """Human-readable EXP-S2 summary."""
    rows = []
    for pair in study["pairs"]:
        fluid = pair["fluid"]
        packet = pair.get("packet")
        rows.append(
            {
                "topology": "x".join(
                    str(v) for v in pair["model_params"].values()
                ),
                "receivers": pair["receivers"],
                "packet_events": packet["events"] if packet else None,
                "fluid_events": fluid["events"],
                "data_tx": packet["data_transmissions"] if packet else None,
                "probe_tx": fluid["probe_transmissions"],
                "data_reduction": pair.get("data_event_reduction"),
                "byte_err": pair.get("mcast_bytes_rel_error"),
                "mcast_bytes": fluid["mcast_bytes"],
            }
        )
    parts = [
        render_table(
            rows,
            [
                ("topology", "topology"),
                ("receivers", "receivers"),
                ("packet_events", "packet events"),
                ("fluid_events", "fluid events"),
                ("data_tx", "data tx"),
                ("probe_tx", "probe tx"),
                ("data_reduction", "data-plane x", fmt_float(1)),
                ("byte_err", "byte err", fmt_float(6)),
                ("mcast_bytes", "mcast bytes", fmt_bytes),
            ],
            title="EXP-S2 — packet vs fluid traffic engines",
        )
    ]
    cell = study.get("million_cell")
    if cell:
        parts.append(
            "Million-receiver cell: {recv:,} receivers ({hosts:,} hosts x "
            "weight {w}) on {r} routers: {e:,} events, "
            "{d} delivered bytes (weighted).".format(
                recv=cell["receivers"],
                hosts=cell["hosts"],
                w=cell["receiver_weight"],
                r=cell["routers"],
                e=cell["events"],
                d=fmt_bytes(cell["traffic"]["delivered_bytes"]),
            )
        )
    return "\n\n".join(parts)
