"""Scenario metrics: the quantities of the paper's §4.3 comparison.

Everything is derived from the structured trace and the per-link byte
accounting — the protocol code is not instrumented ad hoc:

* **join delay** — attachment of a mobile receiver to a link → first
  multicast delivery (paper §4.2.1-A); measured by
  :class:`~repro.workloads.apps.ReceiverApp`, with the handoff start
  available here,
* **leave delay** — departure of the last member from a link → the MLD
  router detecting the absence and PIM-DM stopping forwarding
  (paper §4.2.1-A),
* **bandwidth** — wasted multicast bytes on memberless links, tunnel
  overhead bytes, signaling bytes by protocol (§4.3 criteria),
* **routing optimality** — measured end-to-end latency against the
  shortest-path latency between the current sender and receiver links
  (stretch 1.0 = optimal; tunnels cross links twice → stretch > 1),
* **system load** — per-node encapsulation/forwarding counters, PIM
  state sizes, binding-cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..net import Address, Network
from ..net.link import Link

__all__ = ["StatsSnapshot", "ScenarioMetrics", "per_hop_latency"]


def per_hop_latency(link: Link, payload_bytes: int) -> float:
    """Idle-link crossing time for a datagram of ``payload_bytes`` app
    payload (+40-byte IPv6 header): serialization + propagation."""
    wire = payload_bytes + 40
    return wire * 8 / link.bandwidth_bps + link.delay


@dataclass
class StatsSnapshot:
    """A point-in-time copy of all link byte counters."""

    time: float
    data: Dict[str, Dict[str, int]]

    def bytes_on(self, link: str, category: Optional[str] = None) -> int:
        per_link = self.data.get(link, {})
        if category is None:
            return sum(per_link.values())
        return per_link.get(category, 0)

    def total(self, category: Optional[str] = None) -> int:
        return sum(self.bytes_on(link, category) for link in self.data)

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Byte counts accumulated since ``earlier``."""
        out: Dict[str, Dict[str, int]] = {}
        for link, cats in self.data.items():
            base = earlier.data.get(link, {})
            out[link] = {c: v - base.get(c, 0) for c, v in cats.items()}
        return StatsSnapshot(time=self.time, data=out)


class ScenarioMetrics:
    """Trace/stats-backed metric queries for one simulation run.

    Every trace read goes through the tracer's indexed store
    (:class:`repro.obs.store.TraceStore`), so the per-category /
    per-node / time-window lookups below cost O(log k) instead of a
    scan over the whole event list.
    """

    def __init__(self, net: Network, traffic=None) -> None:
        self.net = net
        #: optional :class:`repro.traffic.TrafficModel` — fluid mode
        #: integrates analytically, so stats reads must sync first
        self.traffic = traffic

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        if self.traffic is not None:
            self.traffic.sync()
        return StatsSnapshot(time=self.net.now, data=self.net.stats.snapshot())

    # ------------------------------------------------------------------
    # delays
    # ------------------------------------------------------------------
    def move_start_time(self, host: str, after: float = 0.0) -> Optional[float]:
        ev = self.net.tracer.first("mobility", node=host, since=after, event="detached")
        return ev.time if ev else None

    def attach_time(self, host: str, link: str, after: float = 0.0) -> Optional[float]:
        ev = self.net.tracer.first(
            "mobility", node=host, since=after, event="attached", link=link
        )
        return ev.time if ev else None

    def coa_ready_time(self, host: str, after: float = 0.0) -> Optional[float]:
        ev = self.net.tracer.first(
            "mobility", node=host, since=after, event="coa-configured"
        )
        return ev.time if ev else None

    def leave_delay(
        self, link: str, group: Address, departure_time: float
    ) -> Optional[float]:
        """Departure → MLD detecting no members left on ``link``.

        Bounded by T_MLI (260 s with defaults, paper §4.2.1-A).
        """
        ev = self.net.tracer.first(
            "mld",
            since=departure_time,
            event="members-gone",
            link=link,
            group=str(group),
        )
        return ev.time - departure_time if ev else None

    def binding_update_rtts(self, host: str) -> List[float]:
        node = self.net.node(host)
        return list(getattr(node, "bu_rtts", []))

    # ------------------------------------------------------------------
    # protocol event counts
    # ------------------------------------------------------------------
    def assert_count(self, since: float = 0.0) -> int:
        return self.net.tracer.count("pim", since=since, event="assert-sent")

    def graft_count(self, since: float = 0.0) -> int:
        return self.net.tracer.count("pim", since=since, event="graft-sent")

    def prune_count(self, since: float = 0.0) -> int:
        return self.net.tracer.count("pim", since=since, event="prune-sent")

    def entries_created(self, source: Optional[Address] = None, since: float = 0.0) -> int:
        kwargs = {"event": "entry-created"}
        if source is not None:
            kwargs["source"] = str(source)
        return self.net.tracer.count("pim.state", since=since, **kwargs)

    def flood_extent(self, source: Address, group: Address, since: float = 0.0) -> List[str]:
        """Distinct links that carried (S,G) data since ``since``."""
        links = set()
        for ev in self.net.tracer.query(
            "mcast.forward", since=since, source=str(source), group=str(group)
        ):
            links.update(ev.detail.get("links", []))
        return sorted(links)

    # ------------------------------------------------------------------
    # routing optimality
    # ------------------------------------------------------------------
    def optimal_latency(
        self, from_link: str, to_link: str, payload_bytes: int
    ) -> float:
        hops = self.net.shortest_path_links(from_link, to_link)
        link = self.net.link(from_link)
        return hops * per_hop_latency(link, payload_bytes)

    def stretch(
        self,
        measured_latency: float,
        from_link: str,
        to_link: str,
        payload_bytes: int,
    ) -> float:
        """Measured / shortest-path latency (1.0 = optimal routing)."""
        return measured_latency / self.optimal_latency(from_link, to_link, payload_bytes)

    # ------------------------------------------------------------------
    # system load
    # ------------------------------------------------------------------
    def system_load(self) -> Dict[str, Dict[str, int]]:
        """Per-node load counters (§4.3: processing/storage load)."""
        out: Dict[str, Dict[str, int]] = {}
        for name, node in sorted(self.net.nodes.items()):
            row = dict(node.load)
            pim = getattr(node, "pim", None)
            if pim is not None:
                row["pim_entries"] = len(pim.entries)
                row["node_groups"] = len(pim.node_groups)
            cache = getattr(node, "binding_cache", None)
            if cache is not None:
                row["bindings"] = len(cache)
                row["groups_on_behalf"] = len(cache.all_groups())
            out[name] = row
        return out

    def publish(self, registry) -> None:
        """Export the run's current state into a metrics registry.

        Publishes the per-link byte/packet counters (via
        ``NetworkStats.publish_to``) and the §4.3 per-node load rows as
        ``repro_node_load{node,counter}`` gauges.  ``registry`` is any
        :class:`repro.obs.registry.MetricsRegistry`-shaped object.
        """
        self.net.stats.publish_to(registry)
        load_gauge = registry.gauge(
            "repro_node_load",
            "Per-node processing/storage load counters (§4.3)",
            ("node", "counter"),
        )
        for name, row in self.system_load().items():
            for counter, value in row.items():
                load_gauge.labels(node=name, counter=counter).set(value)

    def total_encapsulations(self) -> int:
        return sum(n.load["encapsulations"] for n in self.net.nodes.values())

    def home_agent_encapsulations(self) -> int:
        return sum(
            n.load["encapsulations"]
            for n in self.net.nodes.values()
            if hasattr(n, "binding_cache")
        )
