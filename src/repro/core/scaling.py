"""Home-agent load scaling (paper §4.3.2).

"The system load of a single home agent increases with the number of
mobile hosts it must support, the number of multicast groups its mobile
hosts need to receive, and the amount of traffic in the groups."

Two sweeps on the Figure 1 network quantify this for Router D (the home
agent of Link 4):

* :func:`run_ha_load_vs_mobiles` — N mobile receivers homed on Link 4,
  all away on Link 6 behind HA tunnels; measures D's encapsulation
  count (one tunnel copy per datagram per mobile — the unicast
  replication the paper criticizes),
* :func:`run_ha_load_vs_groups` — one mobile receiver subscribed to G
  groups, each fed by its own CBR flow,
* :func:`run_ha_load_vs_rate` — one mobile, one group, varying source
  packet rate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..analysis.tables import fmt_bytes, render_table
from ..campaign import CampaignGrid, CampaignRunner
from ..mipv6 import DeliveryMode
from ..net import Address, make_multicast_group
from .scenario import PaperScenario, ScenarioConfig
from .strategies import BIDIRECTIONAL_TUNNEL

__all__ = [
    "run_ha_load_vs_mobiles",
    "run_ha_load_vs_groups",
    "run_ha_load_vs_rate",
    "ha_load_mobiles_cell",
    "ha_load_groups_cell",
    "ha_load_rate_cell",
    "render_scaling",
]


def _run_grid(
    grid: CampaignGrid,
    runner: Optional[CampaignRunner],
    jobs: int,
    cache_dir,
    seed: int,
) -> List[Dict[str, Any]]:
    if runner is None:
        runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir, master_seed=seed)
    return runner.run(grid.cells()).require_success().results()


def ha_load_mobiles_cell(
    mobiles: int,
    seed: int = 0,
    measure_window: float = 30.0,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    """One sweep point: N tunnel-mode mobiles homed on Link 4, away on Link 6."""
    sc = PaperScenario(
        ScenarioConfig(
            seed=seed,
            approach=BIDIRECTIONAL_TUNNEL,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
        )
    )
    extras = [
        sc.paper.add_mobile_host(
            f"M{k}", "L4", host_id=110 + k,
            recv_mode=DeliveryMode.HA_TUNNEL, send_mode=DeliveryMode.HA_TUNNEL,
        )
        for k in range(mobiles)
    ]
    sc.converge()
    for host in extras:
        host.join_group(sc.group)
    sc.run_for(2.0)
    for k, host in enumerate(extras):
        sc.net.sim.schedule_at(
            40.0 + 0.1 * k, host.move_to, sc.paper.link("L6")
        )
    sc.run_until(45.0)
    d = sc.paper.router("D")
    base_encap = d.load["encapsulations"]
    base_tunneled = d.tunneled_to_mobiles
    sc.run_for(measure_window)
    sc.finish()
    return {
        "mobiles": mobiles,
        "ha_encapsulations": d.load["encapsulations"] - base_encap,
        "tunneled_datagrams": d.tunneled_to_mobiles - base_tunneled,
        "bindings": len(d.binding_cache),
        "tunnel_overhead_bytes": sc.metrics.snapshot().total("tunnel_overhead"),
    }


def _traffic_base(
    traffic_model: str, probe_interval: Optional[float]
) -> Dict[str, Any]:
    """Traffic-engine cell params, empty in packet mode so packet-mode
    cache keys stay byte-identical to pre-fluid releases."""
    if traffic_model == "packet":
        return {}
    out: Dict[str, Any] = {"traffic_model": traffic_model}
    if probe_interval is not None:
        out["probe_interval"] = probe_interval
    return out


def run_ha_load_vs_mobiles(
    counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    measure_window: float = 30.0,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """HA encapsulation load vs. number of mobile hosts it serves."""
    grid = CampaignGrid(
        "scaling.mobiles",
        axes={"mobiles": list(counts)},
        base={
            "seed": seed,
            "measure_window": measure_window,
            **_traffic_base(traffic_model, probe_interval),
        },
        name="ha-load-vs-mobiles",
    )
    return _run_grid(grid, runner, jobs, cache_dir, seed)


def ha_load_groups_cell(
    groups: int,
    seed: int = 0,
    measure_window: float = 30.0,
    packet_interval: float = 0.1,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    """One sweep point: a mobile subscribed to N groups, each with CBR."""
    sc = PaperScenario(
        ScenarioConfig(
            seed=seed, approach=BIDIRECTIONAL_TUNNEL,
            packet_interval=packet_interval,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
        )
    )
    group_addrs = [make_multicast_group(10 + k) for k in range(groups)]
    # extra flows go through the scenario's traffic engine so fluid
    # mode integrates them too (packet mode builds identical sources)
    sources = [
        sc.traffic.add_cbr(sc.paper.sender, g,
                           packet_interval=packet_interval, flow=f"flow-{k}")
        for k, g in enumerate(group_addrs)
    ]
    mobile = sc.paper.add_mobile_host(
        "MG", "L4", host_id=120,
        recv_mode=DeliveryMode.HA_TUNNEL, send_mode=DeliveryMode.HA_TUNNEL,
    )
    sc.converge()
    for g in group_addrs:
        mobile.join_group(g)
    for src in sources:
        src.start()
    sc.move("MG", "L6", at=40.0)
    sc.run_until(45.0)
    d = sc.paper.router("D")
    base = d.load["encapsulations"]
    sc.run_for(measure_window)
    sc.finish()
    return {
        "groups": groups,
        "ha_encapsulations": d.load["encapsulations"] - base,
        "groups_on_behalf": len(d.groups_on_behalf()),
    }


def run_ha_load_vs_groups(
    counts: Sequence[int] = (1, 2, 4),
    seed: int = 0,
    measure_window: float = 30.0,
    packet_interval: float = 0.1,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """HA encapsulation load vs. number of subscribed groups."""
    grid = CampaignGrid(
        "scaling.groups",
        axes={"groups": list(counts)},
        base={
            "seed": seed,
            "measure_window": measure_window,
            "packet_interval": packet_interval,
            **_traffic_base(traffic_model, probe_interval),
        },
        name="ha-load-vs-groups",
    )
    return _run_grid(grid, runner, jobs, cache_dir, seed)


def ha_load_rate_cell(
    packet_interval: float,
    seed: int = 0,
    measure_window: float = 30.0,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    """One sweep point: one tunnel-mode mobile at the given source rate."""
    sc = PaperScenario(
        ScenarioConfig(
            seed=seed, approach=BIDIRECTIONAL_TUNNEL,
            packet_interval=packet_interval,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
        )
    )
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(45.0)
    d = sc.paper.router("D")
    base = d.load["encapsulations"]
    sc.run_for(measure_window)
    sc.finish()
    return {
        "packets_per_s": round(1.0 / packet_interval, 1),
        "ha_encapsulations": d.load["encapsulations"] - base,
    }


def run_ha_load_vs_rate(
    packet_intervals: Sequence[float] = (0.2, 0.1, 0.05),
    seed: int = 0,
    measure_window: float = 30.0,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """HA encapsulation load vs. source traffic rate."""
    grid = CampaignGrid(
        "scaling.rate",
        axes={"packet_interval": list(packet_intervals)},
        base={
            "seed": seed,
            "measure_window": measure_window,
            **_traffic_base(traffic_model, probe_interval),
        },
        name="ha-load-vs-rate",
    )
    return _run_grid(grid, runner, jobs, cache_dir, seed)


def render_scaling(rows: List[Dict[str, Any]], key: str) -> str:
    columns = [(key, key)] + [
        (c, c, fmt_bytes if "bytes" in c else None)
        for c in rows[0]
        if c != key
    ]
    return render_table(rows, columns, title=f"HA load vs {key} (paper §4.3.2)")
