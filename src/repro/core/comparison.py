"""Quantitative reproduction of the paper's §4.3 comparison.

The paper compares the four approaches *qualitatively* on join delay,
protocol overhead, bandwidth consumption, routing optimality, and
system load.  This module measures each criterion in the Figure 1
network and checks the paper's qualitative ordering:

* **join delay** — with a bi-directional tunnel a mobile receiver "does
  not experience any significant join delay"; with local membership and
  no unsolicited Reports it waits O(T_Query),
* **bandwidth** — leave-delay waste on the abandoned link (all
  approaches: the paper notes MLD cannot see the host leave), tunnel
  overhead per datagram (tunnel approaches only), re-flood traffic when
  a local-sending mobile moves,
* **routing optimality** — local membership routes optimally
  (stretch 1); tunneled datagrams cross links twice (stretch > 1),
* **system load** — home agents encapsulate every tunneled datagram;
  with local membership they do nothing,
* **mobile sender** — local sending rebuilds a source-rooted tree at
  every move (one new (S,G) entry per router, network-wide flood) and
  triggers unwanted asserts when the stale-source window hits an
  on-tree link; tunneled sending leaves the tree untouched.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import fmt_bytes, fmt_float, fmt_seconds, render_table
from ..campaign import CampaignCell, CampaignRunner
from ..mipv6 import MobileIpv6Config
from ..mld import MldConfig
from ..pimdm import PimDmConfig
from .scenario import PaperScenario, ScenarioConfig
from .strategies import (
    ALL_APPROACHES,
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    TUNNEL_HA_TO_MH,
    TUNNEL_MH_TO_HA,
    Approach,
)

__all__ = [
    "receiver_mobility_run",
    "sender_mobility_run",
    "comparison_cells",
    "run_full_comparison",
    "ComparisonReport",
]


def _scenario(
    approach: Approach,
    seed: int,
    unsolicited: bool,
    mld: Optional[MldConfig],
    pim: Optional[PimDmConfig],
    mipv6: Optional[MobileIpv6Config],
    packet_interval: float,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> PaperScenario:
    mld_cfg = mld or MldConfig()
    if mld_cfg.unsolicited_reports_on_move != unsolicited:
        from dataclasses import replace

        mld_cfg = replace(mld_cfg, unsolicited_reports_on_move=unsolicited)
    return PaperScenario(
        ScenarioConfig(
            approach=approach,
            seed=seed,
            mld=mld_cfg,
            pim=pim,
            mipv6=mipv6,
            packet_interval=packet_interval,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
        )
    )


def receiver_mobility_run(
    approach: Approach,
    seed: int = 0,
    move_link: str = "L6",
    move_at: float = 40.0,
    unsolicited: bool = True,
    settle: float = 30.0,
    measure_leave: bool = True,
    mld: Optional[MldConfig] = None,
    pim: Optional[PimDmConfig] = None,
    mipv6: Optional[MobileIpv6Config] = None,
    packet_interval: float = 0.05,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    """One §4.3 receiver experiment: Receiver 3 moves to ``move_link``.

    Returns one comparison-table row (join delay, leave delay, wasted
    bytes on the abandoned link, tunnel overhead, signaling bytes,
    routing stretch, home-agent load, duplicates).
    """
    sc = _scenario(
        approach, seed, unsolicited, mld, pim, mipv6, packet_interval,
        traffic_model, probe_interval,
    )
    sc.converge()
    before_move = sc.metrics.snapshot()
    sc.move("R3", move_link, at=move_at)

    mld_cfg = sc.config.mld or MldConfig()
    t_mli = mld_cfg.multicast_listener_interval
    if not unsolicited:
        # The receiver waits for the next General Query: the horizon must
        # cover a full query cycle plus the maximum response delay.
        settle = max(
            settle,
            mld_cfg.query_interval + mld_cfg.query_response_interval + 15.0,
        )
    steady_start = move_at + settle / 2
    sc.run_until(move_at + settle)
    after_settle = sc.metrics.snapshot()

    join_delay = sc.join_delay("R3", move_at)
    app = sc.apps["R3"]
    window = [
        d
        for d in app.deliveries_between(steady_start, move_at + settle)
        if not d.duplicate
    ]
    stretch = None
    if window:
        mean_latency = sum(d.latency for d in window) / len(window)
        stretch = sc.metrics.stretch(
            mean_latency, "L1", move_link, sc.config.payload_bytes
        )

    leave_delay = None
    wasted_bytes = None
    if measure_leave:
        sc.run_until(move_at + t_mli + 30.0)
        leave_delay = sc.leave_delay("L4", move_at)
        if leave_delay is not None:
            at_leave = sc.metrics.snapshot()
            delta = at_leave.delta(before_move)
            wasted_bytes = delta.bytes_on("L4", "mcast_data") + delta.bytes_on(
                "L4", "tunnel_overhead"
            )

    signaling = after_settle.delta(before_move)
    ha = sc.paper.router("D")
    sc.finish()
    return {
        "approach": approach.key,
        "title": approach.title,
        "join_delay": join_delay,
        "leave_delay": leave_delay,
        "wasted_bytes_old_link": wasted_bytes,
        "tunnel_overhead": signaling.total("tunnel_overhead"),
        "mld_bytes": signaling.total("mld"),
        "pim_bytes": signaling.total("pim"),
        "mipv6_bytes": signaling.total("mipv6"),
        "stretch": stretch,
        "ha_encapsulations": ha.load["encapsulations"],
        "ha_groups_on_behalf": len(ha.groups_on_behalf()),
        "mn_decapsulations": sc.paper.host("R3").load["decapsulations"],
        "duplicates": app.duplicate_count,
        "unsolicited": unsolicited,
        "t_mli": t_mli,
    }


def sender_mobility_run(
    approach: Approach,
    seed: int = 0,
    move_link: str = "L6",
    move_at: float = 40.0,
    run_until: float = 100.0,
    mld: Optional[MldConfig] = None,
    pim: Optional[PimDmConfig] = None,
    mipv6: Optional[MobileIpv6Config] = None,
    packet_interval: float = 0.05,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> Dict[str, Any]:
    """One §4.3 sender experiment: Sender S moves to ``move_link``."""
    sc = _scenario(
        approach, seed, True, mld, pim, mipv6, packet_interval,
        traffic_model, probe_interval,
    )
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move("S", move_link, at=move_at)
    sc.run_until(run_until)
    after = sc.metrics.snapshot()
    delta = after.delta(before)

    sender = sc.paper.sender
    coa = sender.care_of_address
    new_entries = (
        sc.metrics.entries_created(source=coa, since=move_at) if coa else 0
    )
    flood_links = (
        sc.metrics.flood_extent(coa, sc.group, since=move_at) if coa else []
    )

    # Service interruption at Receiver 1 (a static member): longest gap
    # in deliveries around the move.
    gaps = _delivery_gaps(sc.apps["R1"], move_at - 5.0, run_until)
    interruption = max(gaps) if gaps else None

    home_agent = sc.paper.router("A")
    sc.finish()
    return {
        "approach": approach.key,
        "title": approach.title,
        "new_sg_entries": new_entries,
        "flood_links": flood_links,
        "asserts": sc.metrics.assert_count(since=move_at),
        "tunnel_overhead": delta.total("tunnel_overhead"),
        "pim_bytes": delta.total("pim"),
        "reverse_tunneled": home_agent.reverse_tunneled,
        "mn_encapsulations": sender.load["encapsulations"],
        "interruption": interruption,
        "erroneous_sends": sc.net.tracer.count(
            "mobility", event="erroneous-source-send", since=move_at
        ),
    }


def _delivery_gaps(app, start: float, end: float) -> List[float]:
    times = sorted(d.time for d in app.deliveries_between(start, end))
    return [b - a for a, b in zip(times, times[1:])]


@dataclass
class ComparisonReport:
    """All §4.3 measurements plus the paper's qualitative claims."""

    receiver_rows: List[Dict[str, Any]] = field(default_factory=list)
    join_study_rows: List[Dict[str, Any]] = field(default_factory=list)
    sender_rows: List[Dict[str, Any]] = field(default_factory=list)
    claims: List[Tuple[str, bool, str]] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(ok for _, ok, _ in self.claims)

    def row(self, rows: str, approach_key: str) -> Dict[str, Any]:
        for row in getattr(self, rows):
            if row["approach"] == approach_key:
                return row
        raise KeyError(approach_key)

    def render(self) -> str:
        parts = []
        parts.append(
            render_table(
                self.receiver_rows,
                [
                    ("approach", "approach"),
                    ("join_delay", "join delay", fmt_seconds),
                    ("leave_delay", "leave delay", fmt_seconds),
                    ("wasted_bytes_old_link", "wasted (old link)", fmt_bytes),
                    ("tunnel_overhead", "tunnel ovh", fmt_bytes),
                    ("mipv6_bytes", "MIPv6 sig", fmt_bytes),
                    ("mld_bytes", "MLD sig", fmt_bytes),
                    ("stretch", "stretch", fmt_float(2)),
                    ("ha_encapsulations", "HA encap"),
                    ("duplicates", "dups"),
                ],
                title="Mobile receiver (R3 moves off-tree) — §4.3 criteria",
            )
        )
        if self.join_study_rows:
            parts.append(
                render_table(
                    self.join_study_rows,
                    [
                        ("approach", "approach"),
                        ("unsolicited", "unsolicited Reports"),
                        ("join_delay", "join delay", fmt_seconds),
                    ],
                    title="Join delay vs unsolicited Reports (§4.3.1 recommendation)",
                )
            )
        parts.append(
            render_table(
                self.sender_rows,
                [
                    ("approach", "approach"),
                    ("new_sg_entries", "new (S,G)"),
                    ("asserts", "asserts"),
                    ("tunnel_overhead", "tunnel ovh", fmt_bytes),
                    ("mn_encapsulations", "MN encap"),
                    ("interruption", "interruption", fmt_seconds),
                ],
                title="Mobile sender (S moves off-tree) — §4.3 criteria",
            )
        )
        claim_lines = ["Paper claims check:"]
        for text, ok, detail in self.claims:
            claim_lines.append(f"  [{'PASS' if ok else 'FAIL'}] {text} ({detail})")
        parts.append("\n".join(claim_lines))
        return "\n\n".join(parts)


#: Join-delay study rows: local membership with and without the paper's
#: unsolicited-Report recommendation; tunnel for reference.
_JOIN_STUDY = (
    (LOCAL_MEMBERSHIP, True),
    (LOCAL_MEMBERSHIP, False),
    (BIDIRECTIONAL_TUNNEL, True),
)


def comparison_cells(
    seed: int = 0,
    approaches: Sequence[Approach] = tuple(ALL_APPROACHES),
    measure_leave: bool = True,
    mld: Optional[MldConfig] = None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> List[CampaignCell]:
    """The §4.3 comparison matrix as a campaign grid.

    One ``comparison.receiver`` and one ``comparison.sender`` cell per
    approach, plus the three join-delay study cells — 11 cells with
    the default four approaches.  Traffic-engine params are added to
    the cells only when non-default, so packet-mode cache keys stay
    byte-identical to pre-fluid releases.
    """
    mld_params = asdict(mld) if mld is not None else None
    traffic_params: Dict[str, Any] = {}
    if traffic_model != "packet":
        traffic_params["traffic_model"] = traffic_model
        if probe_interval is not None:
            traffic_params["probe_interval"] = probe_interval
    cells = [
        CampaignCell(
            "comparison.receiver",
            {
                "approach": approach.key,
                "seed": seed,
                "measure_leave": measure_leave,
                "mld": mld_params,
                **traffic_params,
            },
        )
        for approach in approaches
    ]
    cells += [
        CampaignCell(
            "comparison.sender",
            {
                "approach": approach.key,
                "seed": seed,
                "mld": mld_params,
                **traffic_params,
            },
        )
        for approach in approaches
    ]
    cells += [
        CampaignCell(
            "comparison.receiver",
            {
                "approach": approach.key,
                "seed": seed,
                "unsolicited": unsol,
                "measure_leave": False,
                "mld": mld_params,
                **traffic_params,
            },
        )
        for approach, unsol in _JOIN_STUDY
    ]
    return cells


def run_full_comparison(
    seed: int = 0,
    approaches: Sequence[Approach] = tuple(ALL_APPROACHES),
    measure_leave: bool = True,
    mld: Optional[MldConfig] = None,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    cache_dir=None,
    traffic_model: str = "packet",
    probe_interval: Optional[float] = None,
) -> ComparisonReport:
    """Run the complete §4.3 comparison and evaluate the paper's claims.

    The matrix executes through the campaign engine
    (:mod:`repro.campaign`): every receiver/sender/join-study cell is
    an independent shard, so ``jobs`` parallelizes the comparison and
    ``cache_dir`` makes re-runs incremental.  With the defaults
    (``jobs=1``, no cache) the rows are computed exactly as the
    original serial loops did.
    """
    if runner is None:
        runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir, master_seed=seed)
    rows = runner.run(
        comparison_cells(
            seed,
            approaches,
            measure_leave,
            mld,
            traffic_model=traffic_model,
            probe_interval=probe_interval,
        )
    ).require_success().results()

    n = len(list(approaches))
    report = ComparisonReport(
        receiver_rows=rows[:n],
        sender_rows=rows[n : 2 * n],
        join_study_rows=rows[2 * n :],
    )
    _evaluate_claims(report)
    return report


def _evaluate_claims(report: ComparisonReport) -> None:
    claims = report.claims

    def receiver(key: str) -> Dict[str, Any]:
        return report.row("receiver_rows", key)

    def sender(key: str) -> Dict[str, Any]:
        return report.row("sender_rows", key)

    # §4.3.1 / §4.3.2: with wait-for-query the local join delay is
    # O(T_Query); a tunnel receiver's is the handoff pipeline only.
    wait_row = next(
        r
        for r in report.join_study_rows
        if r["approach"] == LOCAL_MEMBERSHIP.key and not r["unsolicited"]
    )
    tunnel_row = next(
        r
        for r in report.join_study_rows
        if r["approach"] == BIDIRECTIONAL_TUNNEL.key
    )
    if wait_row["join_delay"] is not None and tunnel_row["join_delay"] is not None:
        ok = tunnel_row["join_delay"] < wait_row["join_delay"] / 3
        claims.append(
            (
                "bi-directional tunnel join delay << local wait-for-query join delay",
                ok,
                f"{tunnel_row['join_delay']:.2f}s vs {wait_row['join_delay']:.2f}s",
            )
        )
    unsol_row = next(
        r
        for r in report.join_study_rows
        if r["approach"] == LOCAL_MEMBERSHIP.key and r["unsolicited"]
    )
    if unsol_row["join_delay"] is not None and wait_row["join_delay"] is not None:
        ok = unsol_row["join_delay"] < wait_row["join_delay"] / 3
        claims.append(
            (
                "unsolicited Reports slash the local join delay (§4.3.1)",
                ok,
                f"{unsol_row['join_delay']:.2f}s vs {wait_row['join_delay']:.2f}s",
            )
        )

    # Leave delay bounded by T_MLI in every approach.
    for row in report.receiver_rows:
        if row["leave_delay"] is None:
            continue
        ok = 0 < row["leave_delay"] <= row["t_mli"] + 1.0
        claims.append(
            (
                f"leave delay bounded by T_MLI ({row['approach']})",
                ok,
                f"{row['leave_delay']:.1f}s <= {row['t_mli']:.0f}s",
            )
        )

    # Routing optimality: local receive optimal, tunneled receive not.
    local = receiver(LOCAL_MEMBERSHIP.key)
    bidir = receiver(BIDIRECTIONAL_TUNNEL.key)
    if local["stretch"] is not None:
        claims.append(
            (
                "local membership routes multicast optimally",
                local["stretch"] < 1.2,
                f"stretch {local['stretch']:.2f}",
            )
        )
    if bidir["stretch"] is not None and local["stretch"] is not None:
        claims.append(
            (
                "tunneled reception is suboptimal (links crossed twice)",
                bidir["stretch"] > local["stretch"] * 1.1,
                f"stretch {bidir['stretch']:.2f} vs {local['stretch']:.2f}",
            )
        )

    # System load: home agents encapsulate only in tunnel-receive modes.
    claims.append(
        (
            "home agent has no multicast load under local membership",
            local["ha_encapsulations"] == 0,
            f"{local['ha_encapsulations']} encapsulations",
        )
    )
    claims.append(
        (
            "home agent encapsulates every tunneled datagram (bi-dir tunnel)",
            bidir["ha_encapsulations"] > 100,
            f"{bidir['ha_encapsulations']} encapsulations",
        )
    )

    # Mobile sender: local sending rebuilds the tree; tunneled does not.
    s_local = sender(LOCAL_MEMBERSHIP.key)
    s_bidir = sender(BIDIRECTIONAL_TUNNEL.key)
    claims.append(
        (
            "local sending after a move builds a new source-rooted tree",
            s_local["new_sg_entries"] >= 4,
            f"{s_local['new_sg_entries']} new (S,G) entries",
        )
    )
    claims.append(
        (
            "tunneled sending keeps the existing tree (no new state)",
            s_bidir["new_sg_entries"] == 0,
            f"{s_bidir['new_sg_entries']} new (S,G) entries",
        )
    )
    claims.append(
        (
            "tunneled sending pays per-datagram encapsulation overhead",
            s_bidir["tunnel_overhead"] > 0 and s_local["tunnel_overhead"] == 0,
            f"{s_bidir['tunnel_overhead']}B vs {s_local['tunnel_overhead']}B",
        )
    )

    # The uni-directional combinations inherit the matching halves.
    ut_mh = receiver(TUNNEL_MH_TO_HA.key)
    ut_ha = receiver(TUNNEL_HA_TO_MH.key)
    if ut_mh["stretch"] is not None and local["stretch"] is not None:
        claims.append(
            (
                "MH->HA tunnel keeps optimal routing toward mobile receivers",
                abs(ut_mh["stretch"] - local["stretch"]) < 0.25,
                f"stretch {ut_mh['stretch']:.2f}",
            )
        )
    if ut_ha["stretch"] is not None and bidir["stretch"] is not None:
        claims.append(
            (
                "HA->MH tunnel inherits the tunnel-receive suboptimality",
                ut_ha["stretch"] > 1.1,
                f"stretch {ut_ha['stretch']:.2f}",
            )
        )
