"""Mobility models for mobile nodes."""

from .models import PoissonMobility, RandomWaypointMobility, ScriptedMobility

__all__ = ["PoissonMobility", "RandomWaypointMobility", "ScriptedMobility"]
