"""Mobility models driving mobile-node movement.

The §4.3 comparison depends on the *mobility rate* of senders and
receivers ("the wasted capacity depends mainly on ... the mobility rate
of the sender").  Three models:

* :class:`ScriptedMobility` — an explicit (time, link) schedule; used
  by the figure reproductions (Receiver 3 moves Link 4 → Link 6 at
  t = 300 s, etc.),
* :class:`RandomWaypointMobility` — after a uniformly distributed dwell
  time, move to a uniformly chosen other link,
* :class:`PoissonMobility` — exponential dwell times with a given rate
  (moves/s), the natural "mobility rate" knob for the sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..mipv6.mobile_node import MobileNode
from ..net.link import Link

__all__ = ["ScriptedMobility", "RandomWaypointMobility", "PoissonMobility"]


class ScriptedMobility:
    """Replays an explicit movement schedule."""

    def __init__(self, node: MobileNode, schedule: Sequence[Tuple[float, Link]]) -> None:
        self.node = node
        self.schedule = sorted(schedule, key=lambda entry: entry[0])
        self.moves_done = 0

    def start(self) -> None:
        for time, link in self.schedule:
            self.node.sim.schedule_at(
                time, self._move, link, label=f"{self.node.name}.scripted-move"
            )

    def _move(self, link: Link) -> None:
        self.moves_done += 1
        self.node.move_to(link)


class _RandomMobilityBase:
    """Common machinery for the stochastic models."""

    def __init__(
        self,
        node: MobileNode,
        links: Sequence[Link],
        include_home: bool = True,
        max_moves: Optional[int] = None,
    ) -> None:
        if len(links) < 2:
            raise ValueError("need at least two candidate links")
        self.node = node
        self.links: List[Link] = list(links)
        self.include_home = include_home
        self.max_moves = max_moves
        self.moves_done = 0
        self.move_times: List[float] = []
        self._rng = node.rng.stream(f"mobility.{node.name}")
        self._running = False

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _dwell(self) -> float:
        raise NotImplementedError

    def _schedule_next(self) -> None:
        if not self._running:
            return
        if self.max_moves is not None and self.moves_done >= self.max_moves:
            return
        self.node.sim.schedule(
            self._dwell(), self._move, label=f"{self.node.name}.random-move"
        )

    def _move(self) -> None:
        if not self._running:
            return
        candidates = [
            link
            for link in self.links
            if link is not self.node.current_link
            and (self.include_home or link is not self.node.home_link)
        ]
        if candidates:
            target = self._rng.choice(candidates)
            self.moves_done += 1
            self.move_times.append(self.node.sim.now)
            self.node.move_to(target)
        self._schedule_next()


class RandomWaypointMobility(_RandomMobilityBase):
    """Uniform dwell time in [min_dwell, max_dwell], uniform next link."""

    def __init__(
        self,
        node: MobileNode,
        links: Sequence[Link],
        min_dwell: float = 30.0,
        max_dwell: float = 300.0,
        **kwargs,
    ) -> None:
        super().__init__(node, links, **kwargs)
        if not 0 < min_dwell <= max_dwell:
            raise ValueError("need 0 < min_dwell <= max_dwell")
        self.min_dwell = min_dwell
        self.max_dwell = max_dwell

    def _dwell(self) -> float:
        return self._rng.uniform(self.min_dwell, self.max_dwell)


class PoissonMobility(_RandomMobilityBase):
    """Exponential dwell times: ``rate`` moves per second on average."""

    def __init__(
        self, node: MobileNode, links: Sequence[Link], rate: float, **kwargs
    ) -> None:
        super().__init__(node, links, **kwargs)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def _dwell(self) -> float:
        return self._rng.expovariate(self.rate)
