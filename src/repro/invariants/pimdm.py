"""PIM-DM state-legality oracle.

Three rules over the ``pim`` / ``pim.state`` / ``mcast.forward`` trace
vocabulary (driven purely by events; router configs are read live for
the timer bounds):

``forward-on-pruned-oif``
    After ``oif-pruned`` on an interface, the router must not forward
    the (S,G) flow onto that interface's link until the prune state is
    cleared (``oif-prune-expired``, ``oif-grafted``, ``oif-added``) or
    its lifetime (``prune_hold_time``) runs out.

``forward-while-assert-loser``
    After losing an assert election on an interface
    (``assert-lost``), the router must not forward the flow onto that
    link until the loser state expires (``assert-expired``) or is
    otherwise cleared — this is the per-link assert-winner uniqueness
    guarantee seen from the loser's side.

``graft-unacked``
    Every ``graft-sent`` must be followed by a ``graft-acked`` or a
    retransmitted ``graft-sent`` within ``graft_retry_interval`` plus
    slack (liveness; checked lazily on later events and at
    :meth:`finalize`).

``parallel-forwarders-persist``
    Duplicate forwarding — two different routers forwarding the *same*
    datagram (packet uid) onto the *same* link — is legal only as an
    assert transient.  A duplicate streak persisting beyond the
    settling window means the assert election never converged on a
    unique winner for that link.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..sim.trace import TraceEvent
from .base import Oracle

__all__ = ["PimDmOracle"]

#: slack on the graft-retry liveness deadline (ack propagation etc.)
GRAFT_SLACK = 0.5
#: duplicates of one packet uid are matched within at least this
#: window (two-generation rotation: at most twice it)
DUP_WINDOW = 1.0
#: a duplicate streak with gaps below this is one unresolved election
STREAK_GAP = 1.0
#: how long parallel forwarding may persist before it is a violation
ASSERT_SETTLE = 5.0


class PimDmOracle(Oracle):
    name = "pimdm"

    def __init__(self) -> None:
        super().__init__()
        #: (node, link, source, group) -> [prune deadline, loser deadline]
        #: (one combined table so the forward hot path pays a single
        #: tuple construction and dict probe per link)
        self._blocked: Dict[Tuple[str, str, str, str], List[Optional[float]]] = {}
        #: (node, source, group) -> ack-or-retry deadline
        self._grafts: Dict[Tuple[str, str, str], float] = {}
        #: (uid, link) -> forwarding node, in a two-generation rotating
        #: window (each generation spans DUP_WINDOW; lookups check both,
        #: so a duplicate is matched within [DUP_WINDOW, 2*DUP_WINDOW])
        self._fwd_cur: Dict[Tuple[int, str], str] = {}
        self._fwd_prev: Dict[Tuple[int, str], str] = {}
        self._fwd_gen_start = float("-inf")
        #: (link, source, group) -> [streak_start, last_dup, violated]
        self._streaks: Dict[Tuple[str, str, str], List] = {}
        #: links where >= 2 PIM routers attach (computed on first use):
        #: only these can ever see parallel forwarders
        self._contested: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    def _link_of(self, node_name: str, iface_name: str) -> Optional[str]:
        node = self.net.nodes.get(node_name)
        if node is None:
            return None
        for iface in node.interfaces:
            if iface.name == iface_name and iface.link is not None:
                return iface.link.name
        return None

    def _graft_interval(self, node_name: str) -> float:
        node = self.net.nodes.get(node_name)
        pim = getattr(node, "pim", None)
        return pim.config.graft_retry_interval if pim is not None else 3.0

    def _prune_hold(self, node_name: str) -> float:
        node = self.net.nodes.get(node_name)
        pim = getattr(node, "pim", None)
        return pim.config.prune_hold_time if pim is not None else 210.0

    def _contested_links(self) -> Set[str]:
        if self._contested is None:
            self._contested = set()
            for name, link in self.net.links.items():
                routers = sum(
                    1 for iface in link.interfaces
                    if getattr(iface.node, "pim", None) is not None
                )
                if routers >= 2:
                    self._contested.add(name)
        return self._contested

    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Callable[[TraceEvent], None]]:
        return {
            "mcast.forward": self._on_forward,
            "pim.state": self._on_pim_state,
            "pim": self._on_pim,
            "fault": self._on_fault,
        }

    def _on_fault(self, ev: TraceEvent) -> None:
        if ev.detail.get("event") == "node-crash":
            self._drop_node(ev.node)

    # -- blocked-state bookkeeping (slot 0 = pruned, slot 1 = loser) ----
    def _block(self, key, slot: int, deadline: float) -> None:
        state = self._blocked.get(key)
        if state is None:
            state = self._blocked[key] = [None, None]
        state[slot] = deadline

    def _unblock(self, key, slot: int) -> None:
        state = self._blocked.get(key)
        if state is not None:
            state[slot] = None
            if state[0] is None and state[1] is None:
                del self._blocked[key]

    # -- state transitions ---------------------------------------------
    def _on_pim_state(self, ev: TraceEvent) -> None:
        event = ev.detail.get("event")
        source, group = ev.detail.get("source"), ev.detail.get("group")
        if event == "oif-pruned":
            link = self._link_of(ev.node, ev.detail["iface"])
            if link is not None:
                deadline = ev.time + self._prune_hold(ev.node)
                self._block((ev.node, link, source, group), 0, deadline)
        elif event in ("oif-prune-expired", "oif-grafted", "oif-added"):
            link = self._link_of(ev.node, ev.detail["iface"])
            if link is not None:
                self._unblock((ev.node, link, source, group), 0)
        elif event == "entry-expired":
            self._grafts.pop((ev.node, source, group), None)
            for key in [k for k in self._blocked if k[0] == ev.node
                        and k[2] == source and k[3] == group]:
                del self._blocked[key]

    def _on_pim(self, ev: TraceEvent) -> None:
        if self._grafts:
            self._check_graft_deadlines(ev.time)
        event = ev.detail.get("event")
        source, group = ev.detail.get("source"), ev.detail.get("group")
        if event == "graft-sent":
            deadline = ev.time + self._graft_interval(ev.node) + GRAFT_SLACK
            self._grafts[(ev.node, source, group)] = deadline
        elif event == "graft-acked":
            self._grafts.pop((ev.node, source, group), None)
        elif event == "assert-lost":
            link = self._link_of(ev.node, ev.detail["iface"])
            if link is not None:
                node = self.net.nodes.get(ev.node)
                pim = getattr(node, "pim", None)
                hold = pim.config.assert_time if pim is not None else 180.0
                self._block((ev.node, link, source, group), 1, ev.time + hold)
        elif event == "assert-expired":
            link = self._link_of(ev.node, ev.detail["iface"])
            if link is not None:
                self._unblock((ev.node, link, source, group), 1)

    def _drop_node(self, node_name: str) -> None:
        for key in [k for k in self._blocked if k[0] == node_name]:
            del self._blocked[key]
        for key in [k for k in self._grafts if k[0] == node_name]:
            del self._grafts[key]

    # -- safety checks on the data path --------------------------------
    def _on_forward(self, ev: TraceEvent) -> None:
        if self._grafts:
            self._check_graft_deadlines(ev.time)
        node = ev.node
        detail = ev.detail
        source, group = detail.get("source"), detail.get("group")
        uid = detail.get("uid")
        now = ev.time
        blocked = self._blocked
        contested = self._contested
        if contested is None:
            contested = self._contested_links()
        for link in detail.get("links", ()):
            if blocked:
                state = blocked.get((node, link, source, group))
                if state is not None:
                    self._check_blocked(state, node, link, source, group, now)
            if uid is not None and link in contested:
                self._track_duplicate(node, link, source, group, uid, now)

    def _check_blocked(
        self, state, node: str, link: str, source: str, group: str, now: float
    ) -> None:
        pruned_until, loser_until = state
        if pruned_until is not None:
            if now <= pruned_until:
                self.violate(
                    "forward-on-pruned-oif", node,
                    link=link, source=source, group=group,
                    pruned_until=pruned_until,
                )
            else:
                # prune lifetime over: forwarding legally resumed, even
                # if the expiry event itself went untraced
                self._unblock((node, link, source, group), 0)
        if loser_until is not None:
            if now <= loser_until:
                self.violate(
                    "forward-while-assert-loser", node,
                    link=link, source=source, group=group,
                    loser_until=loser_until,
                )
            else:
                self._unblock((node, link, source, group), 1)

    def _track_duplicate(
        self, node: str, link: str, source: str, group: str, uid: int, now: float
    ) -> None:
        if now - self._fwd_gen_start > DUP_WINDOW:
            self._fwd_prev = self._fwd_cur
            self._fwd_cur = {}
            self._fwd_gen_start = now
        key = (uid, link)
        other = self._fwd_cur.get(key)
        if other is None:
            other = self._fwd_prev.get(key)
        if other is None:
            self._fwd_cur[key] = node
            return
        if other == node:
            return
        streak = self._streaks.get((link, source, group))
        if streak is None or now - streak[1] > STREAK_GAP:
            streak = [now, now, False]
            self._streaks[(link, source, group)] = streak
        streak[1] = now
        if not streak[2] and now - streak[0] > ASSERT_SETTLE:
            streak[2] = True
            self.violate(
                "parallel-forwarders-persist", node,
                link=link, source=source, group=group,
                since=streak[0], other=other,
            )

    # -- liveness -------------------------------------------------------
    def _check_graft_deadlines(self, now: float) -> None:
        if not self._grafts:
            return
        for key, deadline in list(self._grafts.items()):
            if now > deadline:
                del self._grafts[key]
                node, source, group = key
                self.violate(
                    "graft-unacked", node,
                    source=source, group=group, deadline=deadline,
                )

    def finalize(self) -> None:
        self._check_graft_deadlines(self.sim.now)
