"""Kernel sanity oracle: the scheduler itself must stay legal.

Checks, per dispatched event (via :meth:`Simulator.set_dispatch_hook`):

* ``time-regression`` — event time must never run backwards: the
  kernel's heap ordering guarantees monotonic dispatch, so a dispatch
  below the high-water mark means the event's ``time`` was mutated
  after scheduling (heap order and event time disagree),
* ``fired-after-cancel`` — a cancelled event must never reach
  dispatch,
* ``double-dispatch`` — an event must not execute twice.

The per-event cost is a few attribute reads and comparisons, so the
oracle stays inside the <5% overhead budget
(``benchmarks/test_bench_invariants.py``).
"""

from __future__ import annotations

from typing import Optional

from ..sim.kernel import Event, Simulator
from .base import Oracle

__all__ = ["KernelSanityOracle"]


class KernelSanityOracle(Oracle):
    name = "kernel"

    def __init__(self) -> None:
        super().__init__()
        self._last_time = float("-inf")
        self._chained = None
        self._sim: Optional[Simulator] = None

    def routes(self):
        return {}  # no trace events: this oracle lives on the dispatch hook

    def install(self, sim: Simulator) -> None:
        """Hook into the kernel dispatch loop (chains an existing hook)."""
        self._sim = sim
        self._chained = sim.dispatch_hook
        sim.set_dispatch_hook(self.on_dispatch)

    def uninstall(self) -> None:
        if self._sim is not None and self._sim.dispatch_hook is self.on_dispatch:
            self._sim.set_dispatch_hook(self._chained)

    def on_dispatch(self, event: Event) -> None:
        t = event.time
        if t >= self._last_time and not event.cancelled and not event.dispatched:
            self._last_time = t  # the legal fast path: one branch
        else:
            self._report(event, t)
        if self._chained is not None:
            self._chained(event)

    def _report(self, event: Event, t: float) -> None:
        label = event.label or getattr(event.fn, "__qualname__", "?")
        if t < self._last_time:
            self.violate(
                "time-regression", "kernel",
                event=label, time=t, high_water=self._last_time,
            )
        else:
            self._last_time = t
        if event.cancelled:
            self.violate("fired-after-cancel", "kernel", event=label, time=t)
        if event.dispatched:
            self.violate("double-dispatch", "kernel", event=label, time=t)
