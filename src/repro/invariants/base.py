"""Oracle infrastructure: violation records, the oracle base class,
and the :class:`InvariantMonitor` that wires oracles into a live run.

An *oracle* is a passive observer of one protocol layer.  It receives
every :class:`~repro.sim.trace.TraceEvent` the run records (through
the same ``Tracer.add_listener`` hook the metrics collectors use), may
inspect live protocol state through the :class:`~repro.net.Network`,
and reports violations through :meth:`Oracle.violate`.  Oracles never
schedule protocol events, never touch any RNG stream, and emit no
trace events of their own while the run stays legal — so an attached
monitor is invisible to golden-trace digests and result payloads
unless an invariant actually breaks.

A violation

* is recorded as an ``invariant.violation`` trace event,
* increments the ``repro_invariant_violations`` counter (labelled by
  oracle and rule) when a metrics registry is attached,
* is appended to :attr:`InvariantMonitor.violations`, and
* raises :class:`InvariantViolationError` immediately when the monitor
  runs in ``escalate`` mode (the ``--check-invariants`` CLI path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sim.trace import TraceEvent

__all__ = [
    "VIOLATION_CATEGORY",
    "InvariantViolation",
    "InvariantViolationError",
    "InvariantMonitor",
    "Oracle",
]

VIOLATION_CATEGORY = "invariant.violation"


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach."""

    time: float
    oracle: str
    rule: str
    node: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:.3f}] {self.oracle}/{self.rule} @ {self.node} {kv}"


class InvariantViolationError(AssertionError):
    """Raised in escalate mode the moment an oracle reports a breach."""

    def __init__(self, violations: Sequence[InvariantViolation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        super().__init__("\n".join(lines))


class Oracle:
    """Base class: bound to a monitor, fed trace events, finalized once."""

    #: short name used in violation records and metric labels
    name = "oracle"

    def __init__(self) -> None:
        self.monitor: Optional["InvariantMonitor"] = None

    # -- wiring --------------------------------------------------------
    def bind(self, monitor: "InvariantMonitor") -> None:
        self.monitor = monitor

    @property
    def net(self):
        return self.monitor.net

    @property
    def sim(self):
        return self.monitor.net.sim

    def violate(self, rule: str, node: str, **detail: Any) -> None:
        self.monitor.report(self.name, rule, node, detail)

    # -- hooks subclasses implement ------------------------------------
    def routes(self) -> Optional[Dict[str, Callable[[TraceEvent], None]]]:
        """Category -> handler map for the monitor's dispatch table.

        Returning a dict routes only the named categories to this
        oracle (the hot path: one dict lookup per trace event, no call
        at all for categories nobody watches).  Returning ``None``
        keeps the legacy behavior: :meth:`on_event` is invoked for
        *every* category.  An empty dict means "no trace events at
        all" (e.g. a pure kernel-hook oracle).
        """
        return None

    def on_event(self, ev: TraceEvent) -> None:
        """Called for every recorded trace event (violations excluded)
        when :meth:`routes` returns ``None``."""

    def finalize(self) -> None:
        """End-of-run sweep: check liveness deadlines that never saw a
        later event (the run may simply have ended first)."""


class InvariantMonitor:
    """Attach a set of oracles to a network and collect their verdicts.

    Usage::

        monitor = InvariantMonitor(net).attach()
        ...  # run the simulation
        monitor.finalize()          # liveness sweep
        assert not monitor.violations
    """

    def __init__(
        self,
        net,
        oracles: Optional[Sequence[Oracle]] = None,
        registry: Optional[Any] = None,
        escalate: bool = False,
    ) -> None:
        if oracles is None:
            from . import default_oracles

            oracles = default_oracles()
        self.net = net
        self.oracles: List[Oracle] = list(oracles)
        self.registry = registry
        self.escalate = escalate
        self.violations: List[InvariantViolation] = []
        self._attached = False
        self._finalized = False
        for oracle in self.oracles:
            oracle.bind(self)
        # Dispatch table: category -> handlers.  Oracles with explicit
        # routes cost one dict lookup per event; oracles without
        # (routes() is None) land in the wildcard list and see every
        # category, as before.
        self._wildcard = tuple(
            o.on_event for o in self.oracles if o.routes() is None
        )
        table: Dict[str, List] = {}
        for oracle in self.oracles:
            routed = oracle.routes()
            if routed:
                for category, handler in routed.items():
                    table.setdefault(category, []).append(handler)
        self._routes = {
            category: tuple(handlers) + self._wildcard
            for category, handlers in table.items()
        }

    # ------------------------------------------------------------------
    def attach(self) -> "InvariantMonitor":
        """Register as a live trace listener (and kernel dispatch hook)."""
        if self._attached:
            return self
        self._attached = True
        self.net.tracer.add_listener(self._on_event)
        for oracle in self.oracles:
            install = getattr(oracle, "install", None)
            if install is not None:
                install(self.net.sim)
        return self

    def _on_event(self, ev: TraceEvent) -> None:
        handlers = self._routes.get(ev.category)
        if handlers is None:
            # VIOLATION_CATEGORY is never a routed key, so the guard
            # against feeding violations back in only runs off-path.
            if ev.category == VIOLATION_CATEGORY:
                return
            handlers = self._wildcard
        for handler in handlers:
            handler(ev)

    # ------------------------------------------------------------------
    def report(self, oracle: str, rule: str, node: str, detail: Dict[str, Any]) -> None:
        violation = InvariantViolation(
            time=self.net.sim.now, oracle=oracle, rule=rule, node=node,
            detail=dict(detail),
        )
        self.violations.append(violation)
        self.net.tracer.record(
            VIOLATION_CATEGORY, node, oracle=oracle, rule=rule, **detail
        )
        if self.registry is not None:
            self.registry.counter(
                "repro_invariant_violations",
                help="Protocol invariant violations detected by the oracles.",
                label_names=("oracle", "rule"),
            ).labels(oracle=oracle, rule=rule).inc()
        if self.escalate:
            raise InvariantViolationError([violation])

    # ------------------------------------------------------------------
    def finalize(self) -> List[InvariantViolation]:
        """Run every oracle's end-of-run sweep; idempotent."""
        if not self._finalized:
            self._finalized = True
            for oracle in self.oracles:
                oracle.finalize()
        return self.violations

    def check(self) -> None:
        """Finalize and raise if anything was ever violated."""
        self.finalize()
        if self.violations:
            raise InvariantViolationError(self.violations)

    def summary(self) -> Dict[str, Any]:
        return {
            "oracles": [o.name for o in self.oracles],
            "violations": len(self.violations),
        }
