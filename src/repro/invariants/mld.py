"""MLD consistency oracle: router listener state ⊆ host memberships.

A router's *dynamic* membership record (learned from Reports, not a
static join) claims "there is a listener for group G on this link".
The claim may be stale — MLD cannot see a host leave a link — but only
within the robustness-variable settling window: every record expires
``multicast_listener_interval`` (T_MLI = robustness × T_Query +
T_RespDel) after the last Report, and the last Report from a departed
host predates its departure.

The oracle therefore tracks, per (router, interface, group), how long
the router has believed in members that no attached host actually has
(``orphaned``).  A belief orphaned for longer than T_MLI plus a small
response-delay slack is a violation: the router's timer machinery
failed to expire the record.

The scan is state-based (live ``_memberships`` vs. live host
``mld.groups``) and re-evaluated on every ``mld`` / ``mobility`` /
``fault`` trace event — the only moments membership truth can change.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..sim.trace import TraceEvent
from .base import Oracle

__all__ = ["MldConsistencyOracle"]

#: extra grace on top of T_MLI (covers the max response delay rounding)
MLI_SLACK = 2.0

_TRIGGERS = ("mld", "mobility", "fault")


class MldConsistencyOracle(Oracle):
    name = "mld"

    def __init__(self) -> None:
        super().__init__()
        #: (router, iface uid, group int) -> (orphaned-since, reported?)
        self._orphans: Dict[Tuple[str, int, int], list] = {}

    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Callable[[TraceEvent], None]]:
        return {category: self._on_trigger for category in _TRIGGERS}

    def _on_trigger(self, ev: TraceEvent) -> None:
        self._rescan(ev.time)

    def finalize(self) -> None:
        self._rescan(self.sim.now)

    # ------------------------------------------------------------------
    def _rescan(self, now: float) -> None:
        live = set()
        for router in self.net.routers():
            mld = getattr(router, "mld_router", None)
            if mld is None:
                continue
            allowed = (
                mld.config.multicast_listener_interval
                + mld.config.query_response_interval
                + MLI_SLACK
            )
            for (iface_uid, group_int), record in mld._memberships.items():
                if not record.active or record.static_refcount > 0:
                    continue
                link = record.iface.link
                if link is None or self._has_listener(link, record.group):
                    continue
                key = (router.name, iface_uid, group_int)
                live.add(key)
                state = self._orphans.get(key)
                if state is None:
                    self._orphans[key] = state = [now, False]
                elif not state[1] and now - state[0] > allowed:
                    state[1] = True
                    self.violate(
                        "stale-listener-state", router.name,
                        iface=record.iface.name, group=str(record.group),
                        orphaned_since=state[0], allowed=allowed,
                    )
        for key in [k for k in self._orphans if k not in live]:
            del self._orphans[key]

    @staticmethod
    def _has_listener(link, group) -> bool:
        for iface in link.interfaces:
            mld_host = getattr(iface.node, "mld", None)
            if mld_host is not None and group in mld_host.groups:
                return True
        return False
