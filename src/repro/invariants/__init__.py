"""Runtime protocol invariant oracles (safety + liveness).

Always-on auditing of the reproduction's protocol state, motivated by
HPIM-DM's observation that dense-mode correctness hinges on
state-machine legality and by Helmy's argument that mobility-driven
multicast state must be checked continuously rather than spot-checked.

Four oracles ship by default (see their modules for rule semantics):

* :class:`PimDmOracle` — no forwarding on a pruned interface within
  the prune lifetime, every Graft acked or retried, assert-winner
  uniqueness per link (persistent duplicate forwarding),
* :class:`MldConsistencyOracle` — router listener state ⊆ actual host
  memberships after the robustness-variable settling window,
* :class:`Mipv6CoherenceOracle` — binding caches never serve a stale
  care-of address after BU ack; no tunneling to an at-home mobile,
* :class:`KernelSanityOracle` — monotonic event time, no dispatch of a
  cancelled event.

Attach them with::

    from repro.invariants import InvariantMonitor
    monitor = InvariantMonitor(net).attach()
    ...
    monitor.check()      # finalize liveness sweeps, raise on breaches

or globally via the ``REPRO_CHECK_INVARIANTS`` environment variable
(set by the ``--check-invariants`` CLI flag): every
:class:`~repro.core.scenario.PaperScenario` then self-attaches a
monitor in escalate mode — including inside campaign worker
processes, which inherit the environment.
"""

from __future__ import annotations

import os
from typing import List

from .base import (
    VIOLATION_CATEGORY,
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
    Oracle,
)
from .kernel import KernelSanityOracle
from .mipv6 import Mipv6CoherenceOracle
from .mld import MldConsistencyOracle
from .pimdm import PimDmOracle

__all__ = [
    "VIOLATION_CATEGORY",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "KernelSanityOracle",
    "MldConsistencyOracle",
    "Mipv6CoherenceOracle",
    "Oracle",
    "PimDmOracle",
    "checking_enabled",
    "default_oracles",
]

#: environment switch the ``--check-invariants`` CLI flag sets; worker
#: processes inherit it, so campaign cells are checked too
ENV_FLAG = "REPRO_CHECK_INVARIANTS"


def checking_enabled() -> bool:
    """True when runs should self-attach an escalating monitor."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in ("", "0", "false")


def default_oracles() -> List[Oracle]:
    """A fresh instance of every stock oracle."""
    return [
        KernelSanityOracle(),
        PimDmOracle(),
        MldConsistencyOracle(),
        Mipv6CoherenceOracle(),
    ]
