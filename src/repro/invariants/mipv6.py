"""MIPv6 coherence oracle: binding caches must track reality.

Rules over the ``mipv6`` / ``mobility`` trace vocabulary plus live
binding-cache and mobile-node state:

``binding-coa-unknown``
    A home agent registered/refreshed a binding whose care-of address
    was never configured by the mobile node owning that home address.

``binding-sequence-regressed``
    After a Binding Update is accepted, the cached sequence number must
    never move backwards (an older, staler BU overwrote a newer one).

``tunnel-stale-coa``
    Every tunneled datagram must target exactly the care-of address of
    the *latest acknowledged* Binding Update for that home address —
    i.e. the cache entry was corrupted between BU processing and use.

``tunnel-to-home-mn``
    A home agent must never tunnel to a mobile node that is currently
    at home (the binding should have been deregistered, and home-link
    delivery is native).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ..net.addressing import Address
from ..sim.trace import TraceEvent
from .base import Oracle

__all__ = ["Mipv6CoherenceOracle"]

_TUNNEL_EVENTS = ("tunnel-mcast-to-mn", "tunnel-unicast-to-mn")


class Mipv6CoherenceOracle(Oracle):
    name = "mipv6"

    def __init__(self) -> None:
        super().__init__()
        #: (home agent, home address) -> (acked coa, acked sequence)
        self._acked: Dict[Tuple[str, str], Tuple[str, Optional[int]]] = {}
        #: home address -> every care-of address its MN ever configured
        self._configured: Dict[str, Set[str]] = {}
        self._mobiles: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def _mobile_for(self, home: str):
        if self._mobiles is None:
            self._mobiles = {
                str(node.home_address): node
                for node in self.net.nodes.values()
                if getattr(node, "home_address", None) is not None
            }
        return self._mobiles.get(home)

    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Callable[[TraceEvent], None]]:
        return {
            "mipv6": self._on_mipv6,
            "mobility": self._on_mobility,
            "fault": self._on_fault,
        }

    def _on_mobility(self, ev: TraceEvent) -> None:
        if ev.detail.get("event") == "coa-configured":
            mn = self.net.nodes.get(ev.node)
            home = getattr(mn, "home_address", None)
            if home is not None:
                self._configured.setdefault(str(home), set()).add(
                    ev.detail["coa"]
                )

    def _on_fault(self, ev: TraceEvent) -> None:
        if ev.detail.get("event") == "node-crash":
            # A crashed HA loses its cache without deregistration events.
            for key in [k for k in self._acked if k[0] == ev.node]:
                del self._acked[key]

    def _on_mipv6(self, ev: TraceEvent) -> None:
        event = ev.detail.get("event")
        if event in ("binding-registered", "binding-refreshed"):
            self._on_registered(ev)
        elif event in ("binding-deregistered", "binding-expired"):
            self._acked.pop((ev.node, ev.detail.get("home")), None)
        elif event in _TUNNEL_EVENTS:
            self._on_tunnel(ev)

    # ------------------------------------------------------------------
    def _on_registered(self, ev: TraceEvent) -> None:
        home, coa = ev.detail.get("home"), ev.detail.get("coa")
        known = self._configured.get(home)
        if self._mobile_for(home) is not None and (known is None or coa not in known):
            self.violate(
                "binding-coa-unknown", ev.node, home=home, coa=coa,
                configured=sorted(known or ()),
            )
        sequence = None
        ha = self.net.nodes.get(ev.node)
        cache = getattr(ha, "binding_cache", None)
        if cache is not None:
            entry = cache.get(Address(home))
            if entry is not None:
                sequence = entry.sequence
        previous = self._acked.get((ev.node, home))
        if (
            previous is not None
            and previous[1] is not None
            and sequence is not None
            and sequence < previous[1]
        ):
            self.violate(
                "binding-sequence-regressed", ev.node, home=home,
                sequence=sequence, previous=previous[1],
            )
        self._acked[(ev.node, home)] = (coa, sequence)

    def _on_tunnel(self, ev: TraceEvent) -> None:
        home, coa = ev.detail.get("home"), ev.detail.get("coa")
        acked = self._acked.get((ev.node, home))
        if acked is not None and coa != acked[0]:
            self.violate(
                "tunnel-stale-coa", ev.node, home=home,
                coa=coa, acked=acked[0],
            )
        mn = self._mobile_for(home)
        if mn is not None and mn.at_home:
            self.violate("tunnel-to-home-mn", ev.node, home=home, coa=coa)
