"""Backwards-compatible re-export of the traffic sources.

The generators moved to :mod:`repro.traffic.sources` when the
traffic-model interface landed (``repro.traffic``); import them from
there in new code.
"""

from ..traffic.sources import CbrSource, OnOffSource, reset_flow_counter

__all__ = ["CbrSource", "OnOffSource", "reset_flow_counter"]
