"""Receiver-side application instrumentation.

:class:`ReceiverApp` records every multicast datagram delivered to a
host (including duplicates — tunnel delivery plus an on-link copy, the
redundancy the paper points out for the bi-directional tunnel when
several mobile members share a foreign link, §4.3.2) and computes the
receiver-side metrics the experiments report: join delay after a move,
loss gaps, end-to-end latency.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..net.messages import ApplicationData
from ..net.node import Host
from ..net.packet import Ipv6Packet

__all__ = ["Delivery", "ReceiverApp"]


@dataclass(frozen=True)
class Delivery:
    """One datagram delivery at the application."""

    time: float
    flow: str
    seqno: int
    latency: float
    duplicate: bool


class ReceiverApp:
    """Records multicast deliveries at one host."""

    def __init__(self, node: Host) -> None:
        self.node = node
        self.deliveries: List[Delivery] = []
        self._seen: Set[Tuple[str, int]] = set()
        node.on_app_data(self._on_data)

    def _on_data(self, packet: Ipv6Packet, message: ApplicationData) -> None:
        key = (message.flow, message.seqno)
        duplicate = key in self._seen
        self._seen.add(key)
        self.deliveries.append(
            Delivery(
                time=self.node.sim.now,
                flow=message.flow,
                seqno=message.seqno,
                latency=self.node.sim.now - message.sent_at,
                duplicate=duplicate,
            )
        )

    # ------------------------------------------------------------------
    @property
    def unique_count(self) -> int:
        return len(self._seen)

    @property
    def duplicate_count(self) -> int:
        return sum(1 for d in self.deliveries if d.duplicate)

    def delivered_seqnos(self, flow: Optional[str] = None) -> List[int]:
        return sorted(
            {
                d.seqno
                for d in self.deliveries
                if flow is None or d.flow == flow
            }
        )

    def first_delivery_after(self, time: float) -> Optional[Delivery]:
        """Earliest delivery at or after ``time`` (join-delay probe)."""
        times = [d.time for d in self.deliveries]
        idx = bisect.bisect_left(times, time)
        return self.deliveries[idx] if idx < len(self.deliveries) else None

    def join_delay(self, move_time: float) -> Optional[float]:
        """Time from a handoff start to the first subsequent delivery."""
        delivery = self.first_delivery_after(move_time)
        return None if delivery is None else delivery.time - move_time

    def mean_latency(self, since: float = 0.0) -> Optional[float]:
        lats = [d.latency for d in self.deliveries if d.time >= since and not d.duplicate]
        return sum(lats) / len(lats) if lats else None

    def loss_count(self, flow: str, first_seq: int, last_seq: int) -> int:
        """Datagrams of ``flow`` in [first_seq, last_seq] never delivered."""
        got = set(self.delivered_seqnos(flow))
        return sum(1 for s in range(first_seq, last_seq + 1) if s not in got)

    def deliveries_between(self, start: float, end: float) -> List[Delivery]:
        return [d for d in self.deliveries if start <= d.time <= end]
