"""Traffic generators and receiver applications for the experiments."""

from .apps import Delivery, ReceiverApp
from .traffic import CbrSource, OnOffSource

__all__ = ["CbrSource", "Delivery", "OnOffSource", "ReceiverApp"]
