"""EXP-F2 — Figure 2: mobile receiver with local group membership.

Receiver 3 moves from Link 4 to the pruned Link 6; Router E must graft
Link 6 onto the tree on receiving R3's Report, while Router D keeps
forwarding onto Link 4 until the MLD leave delay (≤ 260 s) expires.
"""

from repro.analysis import fmt_seconds, render_tree
from repro.core import LOCAL_MEMBERSHIP, ROUTER_LINKS, PaperScenario, ScenarioConfig

from bench_utils import once, save_report

MOVE_AT = 40.0


def run():
    sc = PaperScenario(ScenarioConfig(seed=2, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move("R3", "L6", at=MOVE_AT)
    sc.run_until(80.0)
    mid_tree = sc.current_tree()
    sc.run_until(MOVE_AT + 260.0 + 30.0)
    return sc, before, mid_tree


def test_bench_fig2_receiver_local(benchmark):
    sc, before, mid_tree = once(benchmark, run)
    join = sc.join_delay("R3", MOVE_AT)
    leave = sc.leave_delay("L4", MOVE_AT)
    wasted = sc.metrics.snapshot().delta(before).bytes_on("L4", "mcast_data")

    report = [
        render_tree(mid_tree, "L1", ROUTER_LINKS,
                    title="Figure 2: tree after R3 moved Link4->Link6 "
                          "(MLD timer on Link 4 not yet expired)"),
        "",
        f"join delay (unsolicited Report + graft): {fmt_seconds(join)}",
        f"leave delay on Link 4:                    {fmt_seconds(leave)}  (bound: T_MLI = 260 s)",
        f"wasted multicast bytes on Link 4:         {wasted}",
        f"grafts by Router E:                       "
        f"{sc.net.tracer.count('pim', node='E', event='graft-sent', since=MOVE_AT)}",
    ]
    save_report("fig2_receiver_local", "\n".join(report))

    # Paper shape: Link 6 grafted, Link 4 still served (Figure 2), leave
    # detected within T_MLI, join delay ~ handoff pipeline.
    assert mid_tree["E"] == ["L6"]
    assert "L4" in mid_tree["D"]
    assert join is not None and join < 3.0
    assert leave is not None and 0 < leave <= 260.0
    assert wasted > 100_000  # the leave-delay bandwidth waste is real
    assert "L4" not in sc.current_tree()["D"]  # gone after expiry
