#!/usr/bin/env python3
"""Standalone entry point for the kernel/campaign macro-benchmarks.

Equivalent to ``python -m repro bench``; exists so the benchmark
harness can be run straight from a checkout without installing::

    python benchmarks/bench_runner.py --quick
    python benchmarks/bench_runner.py --baseline \\
        benchmarks/results/bench_kernel_baseline.json

Writes ``BENCH_KERNEL.json`` (schema ``bench-kernel/v1``; see
docs/PERFORMANCE.md for how to read and diff it).
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.cli import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    main(["bench", *sys.argv[1:]])
