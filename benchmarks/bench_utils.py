"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md §5, prints
the rows/series the paper reports, and saves them under
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
Scenario benchmarks execute once (``once``): they are full simulations
whose wall-time is reported by pytest-benchmark but whose *product* is
the experiment table.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Print the experiment report and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def once(benchmark, fn, *args, **kwargs):
    """Run a full-simulation benchmark exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
