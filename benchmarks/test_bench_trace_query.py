"""Trace-store benchmarks: indexed queries vs linear scan, profiler cost.

Engineering benchmarks for the observability tentpole, not a paper
artifact.  Two contracts are asserted:

* indexed ``Tracer.query``/``count`` are >= 10x faster than the seed's
  linear scan on a 100k-event trace (in practice the category fast
  path is orders of magnitude faster — O(log k) vs O(n)),
* the profiler hook costs < 5% of fig2 end-to-end runtime while *off*
  (measured conservatively: the profiler-ON runtime, which strictly
  dominates the off-mode branch cost, stays within 5% of the
  profiler-off runtime).
"""

from time import perf_counter

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.obs import KernelProfiler
from repro.sim import Tracer

from bench_utils import save_report

N_EVENTS = 100_000
CATEGORIES = (
    "mld",
    "pim",
    "pim.state",
    "mipv6",
    "mcast.deliver",
    "mcast.forward",
    "mobility",
    "link",
)


class _Clock:
    now = 0.0


def build_trace(n=N_EVENTS):
    clock = _Clock()
    tracer = Tracer(clock)
    for i in range(n):
        clock.now = i * 0.001
        tracer.record(
            CATEGORIES[i % len(CATEGORIES)],
            f"n{i % 20}",
            event=f"e{i % 3}",
        )
    return tracer


def linear_query(events, category=None, node=None, since=None, until=None):
    """The seed Tracer's query loop: a full linear scan."""
    for ev in events:
        if category is not None and ev.category != category:
            continue
        if node is not None and ev.node != node:
            continue
        if since is not None and ev.time < since:
            continue
        if until is not None and ev.time > until:
            continue
        yield ev


def best_of(fn, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = perf_counter()
        result = fn()
        best = min(best, perf_counter() - start)
    return best, result


def test_bench_indexed_count_vs_linear_scan():
    tracer = build_trace()
    events = tracer.events

    t_indexed, n_indexed = best_of(lambda: tracer.count("pim"))
    t_linear, n_linear = best_of(
        lambda: sum(1 for _ in linear_query(events, "pim"))
    )
    assert n_indexed == n_linear == N_EVENTS // len(CATEGORIES)
    count_speedup = t_linear / t_indexed

    t_indexed_w, rows_indexed = best_of(
        lambda: list(tracer.query("mobility", node="n6", since=40.0, until=60.0))
    )
    t_linear_w, rows_linear = best_of(
        lambda: list(
            linear_query(events, "mobility", node="n6", since=40.0, until=60.0)
        )
    )
    assert rows_indexed == rows_linear
    query_speedup = t_linear_w / t_indexed_w

    report = "\n".join(
        [
            f"trace size: {N_EVENTS} events, {len(CATEGORIES)} categories",
            f"count('pim'):              indexed {t_indexed * 1e6:9.1f} µs   "
            f"linear {t_linear * 1e6:9.1f} µs   speedup {count_speedup:8.1f}x",
            f"query(cat,node,window):    indexed {t_indexed_w * 1e6:9.1f} µs   "
            f"linear {t_linear_w * 1e6:9.1f} µs   speedup {query_speedup:8.1f}x",
        ]
    )
    save_report("bench_trace_query", report)
    assert count_speedup >= 10.0, f"count speedup only {count_speedup:.1f}x"
    assert query_speedup >= 10.0, f"query speedup only {query_speedup:.1f}x"


def test_bench_indexed_count_throughput(benchmark):
    tracer = build_trace()
    assert benchmark(lambda: tracer.count("pim")) == N_EVENTS // len(CATEGORIES)


def _run_fig2(with_profiler):
    sc = PaperScenario(ScenarioConfig(seed=0, approach=LOCAL_MEMBERSHIP))
    if with_profiler:
        KernelProfiler().install(sc.net.sim)
    start = perf_counter()
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(40.0 + 260.0 + 30.0)
    return perf_counter() - start


def test_bench_profiler_off_overhead_on_fig2():
    """Profiler-off overhead bound: even profiler-ON stays within 5%.

    The off-mode cost of the hook is a single ``is None`` check per
    dispatched event, strictly cheaper than the full accounting path
    measured here, so overhead_on < 5% implies overhead_off < 5%.
    """
    off_times, on_times = [], []
    for _ in range(3):
        off_times.append(_run_fig2(with_profiler=False))
        on_times.append(_run_fig2(with_profiler=True))
    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    save_report(
        "bench_profiler_overhead",
        f"fig2 end-to-end: profiler off {off:.3f} s, on {on:.3f} s, "
        f"on-overhead {overhead * 100:.2f}% (off-mode branch cost is "
        "strictly below this)",
    )
    assert overhead < 0.05, f"profiler overhead {overhead * 100:.1f}% >= 5%"
