"""EXP-F3 — Figure 3: mobile receiver via home-agent tunnel.

Receiver 3 moves from Link 4 to Link 1 and sends its home agent
(Router D) an extended Binding Update carrying the Multicast Group List
Sub-Option; D joins on behalf and tunnels every group datagram to the
care-of address — crossing Links 3, 2, 1 twice, the suboptimal routing
the paper calls out.
"""

from repro.analysis import fmt_seconds, render_figure
from repro.core import BIDIRECTIONAL_TUNNEL, ROUTER_LINKS, PaperScenario, ScenarioConfig

from bench_utils import once, save_report

MOVE_AT = 40.0


def run():
    sc = PaperScenario(ScenarioConfig(seed=3, approach=BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("R3", "L1", at=MOVE_AT)
    sc.run_until(90.0)
    return sc


def test_bench_fig3_receiver_tunnel(benchmark):
    sc = once(benchmark, run)
    d = sc.paper.router("D")
    r3 = sc.paper.host("R3")
    entry = d.binding_cache.get(r3.home_address)

    window = [x for x in sc.apps["R3"].deliveries_between(60.0, 90.0) if not x.duplicate]
    mean_latency = sum(x.latency for x in window) / len(window)
    optimal = sc.metrics.optimal_latency("L1", "L1", 1000)

    report = [
        render_figure(
            sc.current_tree(), "L1", ROUTER_LINKS,
            tunnels=[("Router D (HA)", f"R3 @ {entry.care_of_address}", "multicast tunnel")],
            title="Figure 3: tree + tunnel after R3 moved Link4->Link1",
        ),
        "",
        f"binding: {r3.home_address} -> {entry.care_of_address}",
        f"groups joined on behalf by D: {[str(g) for g in d.groups_on_behalf()]}",
        f"datagrams tunneled by D: {d.tunneled_to_mobiles}",
        f"join delay: {fmt_seconds(sc.join_delay('R3', MOVE_AT))}",
        f"delivery latency via tunnel: {fmt_seconds(mean_latency)} "
        f"vs optimal on-link {fmt_seconds(optimal)} "
        f"(stretch {mean_latency / optimal:.1f}x — links crossed twice)",
    ]
    save_report("fig3_receiver_tunnel", "\n".join(report))

    assert entry is not None
    assert sc.paper.link("L1").prefix.contains(entry.care_of_address)
    assert d.groups_on_behalf() == [sc.group]
    assert d.tunneled_to_mobiles > 300
    # Suboptimal routing: the datagram reaches R3 on its own source link
    # only after a detour via Router D and back.
    assert mean_latency > 3 * optimal
