"""EXP-I2 — span-recorder overhead on the Figure 2 scenario.

The causal span layer (docs/OBSERVABILITY.md) is a passive trace
listener subscribed to the control-plane categories only, so keeping it
attached must cost < 5% of end-to-end runtime on a real experiment —
measured on the Figure 2 receiver move, min of 5 interleaved rounds
with spans on vs off.  Disabled must be structurally free: no recorder
is constructed and the tracer keeps its zero-listener fast path.  The
same runs double as a correctness check: the recorded trace digest,
dispatched-event count and §4.3 join delay are identical either way
(spans are listen-only), and the reconstructed pipeline phases sum to
the join delay.
"""

from time import perf_counter

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.obs import digest_events
from repro.obs.spans import HANDOVER_PHASES

from bench_utils import save_report


def _run_fig2(spanned):
    start = perf_counter()
    sc = PaperScenario(
        ScenarioConfig(seed=0, approach=LOCAL_MEMBERSHIP, trace_spans=spanned)
    )
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(90.0)
    sc.finish()
    return perf_counter() - start, sc


def _fingerprint(sc):
    return (
        digest_events(sc.net.tracer.events),
        sc.net.sim.events_dispatched,
        sc.join_delay("R3", 40.0),
    )


def test_bench_span_recorder_overhead():
    """An attached SpanRecorder stays within 5% of a bare run."""
    _run_fig2(spanned=False)  # warm-up: imports, allocator, caches
    off_times, on_times = [], []
    sc_off = sc_on = None
    for _ in range(5):
        t, sc_off = _run_fig2(spanned=False)
        off_times.append(t)
        t, sc_on = _run_fig2(spanned=True)
        on_times.append(t)

    # disabled is structurally free: no recorder, no tracer listeners,
    # so Tracer.record runs its unmodified zero-listener path
    assert sc_off.spans is None
    assert sc_off.net.tracer._listeners == []

    # spans are listen-only: identical trace, schedule and metrics
    assert _fingerprint(sc_off) == _fingerprint(sc_on)

    # and the reconstruction is sound: four phases summing to the join
    # delay of the instrumented run
    handover = next(
        s
        for s in sc_on.spans.roots
        if s.kind == "handover" and s.node == "R3" and s.start >= 40.0
    )
    phases = [c for c in handover.children if c.kind == "phase"]
    assert [p.name for p in phases] == list(HANDOVER_PHASES)
    phase_sum = sum(p.duration for p in phases)
    join = sc_on.join_delay("R3", 40.0)
    assert abs(phase_sum - join) < 1e-9

    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    save_report(
        "span_overhead",
        "\n".join(
            [
                "EXP-I2: span-recorder overhead on the Figure 2 receiver "
                "move (seed 0, 90 s)",
                f"spans off: {off:.3f} s   spans on: {on:.3f} s   "
                f"overhead {overhead * 100:+.2f}%",
                f"trace digest, {sc_on.net.sim.events_dispatched} dispatched "
                "events and join delay identical with spans on and off",
                f"phase sum {phase_sum:.6f} s == join delay {join:.6f} s "
                f"({len(list(phases))} phases)",
                "disabled path: no recorder constructed, zero tracer "
                "listeners",
            ]
        ),
    )
    assert overhead < 0.05, f"span overhead {overhead * 100:.1f}% >= 5%"
