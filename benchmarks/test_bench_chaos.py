"""EXP-R3 regression gate — the pinned seeded chaos suite.

Runs the 50-cell nemesis matrix (5 archetypes x 2 topologies x 5
seeds, intensity 0.6) through the campaign engine with the
convergence oracle armed, and gates the PR's robustness claim: every
cell converges — after the last heal plus the settle window, every
router's live (S,G) state matches the recomputed reference for the
healed topology with zero residual divergence.

Also gates graceful degradation: delivery survival (delivered /
expected at the offered rate, faults included) never falls below the
committed floor for any archetype.

Calibration (reference machine): ~35 s for the 50 cells; convergence
times p90 well inside the 20 s settle window.
"""

from __future__ import annotations

import json

from repro.chaos import run_chaos_sweep

from bench_utils import RESULTS_DIR, once, save_report

TOPOS = [
    {"model": "hier", "depth": 2, "fanout": 5},
    {"model": "waxman", "n": 24, "seed": 7},
]
SEEDS = (0, 1, 2, 3, 4)
INTENSITY = 0.6
#: every archetype must keep mean delivery survival above this floor
SURVIVAL_FLOOR = 0.75


def run():
    return [
        run_chaos_sweep(
            topos=TOPOS, intensities=(INTENSITY,), receivers=12, seed=seed
        )
        for seed in SEEDS
    ]


def test_bench_chaos_suite(benchmark):
    reports = once(benchmark, run)
    rows = [row for report in reports for row in report["rows"]]
    assert len(rows) == 50

    # the convergence gate: 100% of cells, zero residual divergence
    stuck = [
        (r["topo"]["model"], r["archetype"], r["seed"], r["divergence_rules"])
        for r in rows
        if not r["converged"] or r["divergences"]
    ]
    assert not stuck, f"non-converged chaos cells: {stuck}"

    # every convergence time is defined and inside the settle window
    assert all(r["convergence_time"] is not None for r in rows)
    assert all(r["convergence_time"] <= r["settle"] + 1e-9 for r in rows)

    # graceful degradation: survival floor per archetype
    survival = {}
    for archetype in sorted({r["archetype"] for r in rows}):
        sub = [r["delivery_ratio"] for r in rows if r["archetype"] == archetype]
        survival[archetype] = round(sum(sub) / len(sub), 4)
    weak = {a: s for a, s in survival.items() if s < SURVIVAL_FLOOR}
    assert not weak, f"delivery survival below {SURVIVAL_FLOOR}: {weak}"

    artifact = {
        "experiment": "EXP-R3",
        "cells": len(rows),
        "converged_cells": sum(1 for r in rows if r["converged"]),
        "intensity": INTENSITY,
        "seeds": list(SEEDS),
        "survival_by_archetype": survival,
        "convergence_time_max": max(r["convergence_time"] for r in rows),
        "reports": reports,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "exp_r3_chaos.json").write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"EXP-R3 pinned chaos suite: {artifact['converged_cells']}/"
        f"{artifact['cells']} cells converged "
        f"(intensity {INTENSITY}, seeds {list(SEEDS)})",
        f"max convergence time: {artifact['convergence_time_max']:.3f} s",
        "delivery survival by archetype:",
    ]
    lines += [f"  {a:15s} {s:.4f}" for a, s in survival.items()]
    save_report("exp_r3_chaos", "\n".join(lines))
