"""EXP-F4 — Figure 4: mobile sender tunneling to its home agent.

Sender S moves from Link 1 to Link 6 and tunnels multicast datagrams
(inner source = home address) to Router A, which forwards them on the
home link; the existing source-rooted tree keeps serving all members —
no re-flood, no new (S,G) state, per-datagram encapsulation overhead.
"""

from repro.analysis import fmt_bytes, render_figure
from repro.core import BIDIRECTIONAL_TUNNEL, ROUTER_LINKS, PaperScenario, ScenarioConfig

from bench_utils import once, save_report

MOVE_AT = 40.0


def run():
    sc = PaperScenario(ScenarioConfig(seed=4, approach=BIDIRECTIONAL_TUNNEL))
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move("S", "L6", at=MOVE_AT)
    sc.run_until(100.0)
    return sc, before


def test_bench_fig4_sender_tunnel(benchmark):
    sc, before = once(benchmark, run)
    sender = sc.paper.sender
    a = sc.paper.router("A")
    delta = sc.metrics.snapshot().delta(before)
    new_entries = sc.metrics.entries_created(source=sender.care_of_address, since=MOVE_AT)

    report = [
        render_figure(
            sc.current_tree(), "L1", ROUTER_LINKS,
            tunnels=[(f"S @ {sender.care_of_address} (Link 6)", "Router A (HA)",
                      "reverse multicast tunnel")],
            title="Figure 4: unchanged tree + sender tunnel after S moved Link1->Link6",
        ),
        "",
        f"new (S_coa, G) entries after the move: {new_entries}",
        f"datagrams reverse-tunneled through A: {a.reverse_tunneled}",
        f"sender encapsulations: {sender.load['encapsulations']}",
        f"tunnel overhead since move: {fmt_bytes(delta.total('tunnel_overhead'))}",
        f"asserts since move: {sc.metrics.assert_count(since=MOVE_AT)}",
        "receivers still served: "
        + ", ".join(
            f"{n}={'yes' if sc.apps[n].first_delivery_after(60.0) else 'NO'}"
            for n in ("R1", "R2", "R3")
        ),
    ]
    save_report("fig4_sender_tunnel", "\n".join(report))

    tree = sc.current_tree()
    assert tree["A"] == ["L2"] and tree["D"] == ["L4"]  # unchanged
    assert new_entries == 0
    assert a.reverse_tunneled > 500
    assert delta.total("tunnel_overhead") > 40_000
    assert all(sc.apps[n].first_delivery_after(60.0) for n in ("R1", "R2", "R3"))
