"""EXP-C/O harness benchmark — the parallel campaign engine itself.

Runs the same 8-cell §4.4 timer grid (4 query intervals × 2 seeds)
three ways and records the wall-clocks under
``benchmarks/results/campaign_engine.txt``:

* **cold serial** — ``jobs=1`` into an empty cache,
* **cold sharded** — ``jobs=4`` into an empty cache (on multi-core
  hosts this is where the parallel speedup shows; on a single-core
  runner it only pays process overhead),
* **warm cache** — ``jobs=1`` over the serial run's cache: zero cells
  execute, so the re-run cost is pure cache I/O.

Asserts the determinism contract (all three runs produce identical
tables) and the caching contract (warm run executes nothing and is
>= 2x faster than the cold run it replays).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.campaign import CampaignGrid, CampaignRunner

from bench_utils import save_report

INTERVALS = (10.0, 25.0, 60.0, 125.0)
SEEDS = (0, 1)

GRID = CampaignGrid(
    "timers.point",
    axes={"query_interval": list(INTERVALS), "seed": list(SEEDS)},
    name="timers-8cell",
)


def payload(campaign) -> bytes:
    return json.dumps(campaign.results(), sort_keys=True).encode()


def test_bench_campaign_engine(benchmark):
    assert len(GRID) == 8
    with tempfile.TemporaryDirectory() as tmp:
        serial_cache = Path(tmp) / "serial"
        sharded_cache = Path(tmp) / "sharded"

        cold_serial = CampaignRunner(jobs=1, cache_dir=serial_cache).run(GRID)
        cold_sharded = CampaignRunner(jobs=4, cache_dir=sharded_cache).run(GRID)
        warm = benchmark.pedantic(
            lambda: CampaignRunner(jobs=1, cache_dir=serial_cache).run(GRID),
            rounds=1,
            iterations=1,
        )

    # Determinism: sharding and caching are invisible in the tables.
    assert payload(cold_serial) == payload(cold_sharded) == payload(warm)

    # Caching: the warm run executes nothing and replays the campaign
    # at least 2x faster than the cold run that populated it.
    assert cold_serial.executed == 8 and cold_sharded.executed == 8
    assert warm.executed == 0 and warm.cached == 8
    speedup_warm = cold_serial.wall_clock / max(warm.wall_clock, 1e-9)
    assert speedup_warm >= 2.0, speedup_warm
    speedup_sharded = cold_serial.wall_clock / max(cold_sharded.wall_clock, 1e-9)

    lines = [
        f"campaign engine — {len(GRID)}-cell timer grid "
        f"(T_Query in {INTERVALS}, seeds {SEEDS})",
        "",
        f"{'run':<14} {'jobs':>4} {'executed':>8} {'cached':>6} {'wall':>9}",
        f"{'cold serial':<14} {1:>4} {cold_serial.executed:>8} "
        f"{cold_serial.cached:>6} {cold_serial.wall_clock:>8.2f}s",
        f"{'cold sharded':<14} {4:>4} {cold_sharded.executed:>8} "
        f"{cold_sharded.cached:>6} {cold_sharded.wall_clock:>8.2f}s",
        f"{'warm cache':<14} {1:>4} {warm.executed:>8} "
        f"{warm.cached:>6} {warm.wall_clock:>8.2f}s",
        "",
        f"speedup (cold serial / cold sharded): {speedup_sharded:.1f}x",
        f"speedup (cold serial / warm cache):   {speedup_warm:.1f}x",
        "all three runs produced byte-identical tables",
    ]
    save_report("campaign_engine", "\n".join(lines))
