"""Simulator micro-benchmarks: kernel throughput and scenario cost.

Not a paper artifact — engineering benchmarks that keep the DES fast
enough for the sweeps (run_timer_sweep executes ~10 simulated hours).
"""

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.net import Address, ApplicationData, Ipv6Packet
from repro.sim import Simulator, Timer


def test_bench_kernel_schedule_dispatch(benchmark):
    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run()
        return sim.events_dispatched

    assert benchmark(run) == 10_000


def test_bench_kernel_timer_restart(benchmark):
    """The MLD membership-timer pattern: frequent restarts."""

    def run():
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        for _ in range(5_000):
            timer.start(100.0)
        sim.run(until=1.0)
        return True

    assert benchmark(run)


def test_bench_packet_encapsulation(benchmark):
    inner = Ipv6Packet(
        Address("2001:db8:1::10"), Address("ff1e::1"),
        ApplicationData(seqno=0, payload_bytes=1000),
    )
    coa = Address("2001:db8:6::10")
    ha = Address("2001:db8:1::1")

    def run():
        outer = inner.encapsulate(coa, ha)
        return outer.size_bytes + outer.decapsulate().size_bytes

    assert benchmark(run) == 1080 + 1040


def test_bench_paper_scenario_convergence(benchmark):
    """Wall time to build + converge the full Figure 1 scenario."""

    def run():
        sc = PaperScenario(ScenarioConfig(seed=40, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        return sc.net.sim.events_dispatched

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 1_000
