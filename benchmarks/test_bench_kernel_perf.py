"""Simulator micro-benchmarks: kernel throughput and scenario cost.

Not a paper artifact — engineering benchmarks that keep the DES fast
enough for the sweeps (run_timer_sweep executes ~10 simulated hours).

The restart-heavy benchmarks pin the acceptance criteria of the
heap-compaction work (docs/PERFORMANCE.md): dispatch throughput on the
PIM-DM per-packet timer-restart pattern must stay >= 1.3x the pre-PR
kernel (reproduced verbatim as :class:`LegacySimulator` below:
``@dataclass(order=True)`` heap entries, lazy deletion with **no**
compaction), and the heap must stay bounded — no monotone growth —
over a million-event run.
"""

import heapq
from dataclasses import dataclass, field
from time import perf_counter

from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.net import Address, ApplicationData, Ipv6Packet
from repro.sim import Simulator, Timer
from repro.sim.kernel import Event, SimulationError


# ----------------------------------------------------------------------
# the pre-PR kernel, kept for comparison
# ----------------------------------------------------------------------

@dataclass(order=True)
class _LegacyHeapEntry:
    time: float
    seq: int
    event: Event = field(compare=False)


class LegacySimulator(Simulator):
    """The kernel as it was before tuple entries + compaction.

    Faithful to the old hot path: every heap sift comparison runs the
    generated Python ``__lt__`` of the dataclass entry, and cancelled
    entries stay in the heap until popped, so restart-heavy workloads
    grow the heap without bound.
    """

    def _note_cancel(self) -> None:
        self._pending_count -= 1  # no tombstone accounting, no compaction

    def schedule_at(self, time, fn, *args, label="", **kwargs):
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, now is t={self._now!r}"
            )
        event = Event(time, fn, args, kwargs, label=label)
        event._sim = self
        heapq.heappush(self._heap, _LegacyHeapEntry(time, next(self._seq), event))
        self._pending_count += 1
        return event

    def run(self, until=None, max_events=None):
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._heap)
                event = entry.event
                self._now = event.time
                event.dispatched = True
                self._dispatched_count += 1
                self._pending_count -= 1
                event.fn(*event.args, **event.kwargs)
                dispatched += 1
                if max_events is not None and dispatched > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


def _restart_workload(sim, n, timers=64, sample_every=None, samples=None):
    """The PIM-DM per-packet (S,G) data-timeout pattern.

    Every dispatched tick restarts one of ``timers`` 210 s timers
    (one ``Event.cancel`` + two ``heappush``), exactly the pattern
    that leaked cancelled entries in the pre-PR kernel.  With
    ``sample_every`` (simulated seconds), heap sizes are appended to
    ``samples`` as the run progresses.
    """
    pool = [Timer(sim, _noop, name=f"sg{i}") for i in range(timers)]
    for t in pool:
        t.start(210.0)
    remaining = [n]

    def tick(i):
        pool[i % timers].restart(210.0)
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(0.05, tick, i + 1)

    sim.schedule(0.0, tick, 0)
    if sample_every is not None:
        def sample():
            samples.append(len(sim._heap))
            if sim.events_pending > len(pool):  # ticks still flowing
                sim.schedule(sample_every, sample)

        sim.schedule(sample_every, sample)
    started = perf_counter()
    sim.run()
    return perf_counter() - started


def _noop():
    return None


def _best_of(k, fn):
    return min(fn() for _ in range(k))


# ----------------------------------------------------------------------
# acceptance: >= 1.3x over the pre-PR kernel on the restart-heavy scenario
# ----------------------------------------------------------------------

def test_restart_heavy_dispatch_speedup_vs_legacy_kernel():
    n = 100_000
    legacy = _best_of(2, lambda: _restart_workload(LegacySimulator(), n))
    current = _best_of(2, lambda: _restart_workload(Simulator(), n))
    speedup = legacy / current
    print(
        f"\nrestart-heavy ({n} ticks): legacy {n / legacy:,.0f} ev/s, "
        f"current {n / current:,.0f} ev/s, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.3, (
        f"dispatch throughput regressed: only {speedup:.2f}x over the "
        f"pre-PR kernel (need >= 1.3x)"
    )


def test_heap_stays_bounded_over_million_events():
    """10^6-event restart run: the heap must not grow monotonically.

    The pre-PR kernel accumulates ~one cancelled tombstone per tick
    (the heap ends ~10^6 entries deep); with compaction the physical
    heap stays within a small constant of the ~66 live events.
    """
    sim = Simulator()
    samples = []
    # ticks every 0.05 s -> 10^6 ticks span 50_000 simulated seconds;
    # sample the physical heap size every 250 s (~200 samples).
    _restart_workload(sim, 1_000_000, sample_every=250.0, samples=samples)
    assert sim.events_dispatched > 1_000_000
    assert len(samples) > 50
    peak = max(samples)
    # Default compaction trigger is 1024 tombstones; live events are
    # ~66.  Anything monotone would blow straight past this bound.
    assert peak <= 4096, f"heap peaked at {peak} entries (expected bounded)"
    # No monotone growth: the tail of the run must not sit above the
    # level the heap reached early on.
    early, late = max(samples[: len(samples) // 4]), max(samples[-len(samples) // 4 :])
    assert late <= 2 * early, (samples[:8], samples[-8:])
    assert sim.compactions > 100


# ----------------------------------------------------------------------
# micro-benchmarks (pytest-benchmark)
# ----------------------------------------------------------------------

def test_bench_kernel_schedule_dispatch(benchmark):
    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run()
        return sim.events_dispatched

    assert benchmark(run) == 10_000


def test_bench_kernel_timer_restart(benchmark):
    """The MLD membership-timer pattern: frequent restarts."""

    def run():
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        for _ in range(5_000):
            timer.start(100.0)
        sim.run(until=1.0)
        return True

    assert benchmark(run)


def test_bench_packet_encapsulation(benchmark):
    inner = Ipv6Packet(
        Address("2001:db8:1::10"), Address("ff1e::1"),
        ApplicationData(seqno=0, payload_bytes=1000),
    )
    coa = Address("2001:db8:6::10")
    ha = Address("2001:db8:1::1")

    def run():
        outer = inner.encapsulate(coa, ha)
        return outer.size_bytes + outer.decapsulate().size_bytes

    assert benchmark(run) == 1080 + 1040


def test_bench_paper_scenario_convergence(benchmark):
    """Wall time to build + converge the full Figure 1 scenario."""

    def run():
        sc = PaperScenario(ScenarioConfig(seed=40, approach=LOCAL_MEMBERSHIP))
        sc.converge()
        return sc.net.sim.events_dispatched

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 1_000
