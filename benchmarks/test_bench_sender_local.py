"""EXP-C6 — §4.2.2-A / §4.3.1: mobile sender with local sending.

Two moves of Sender S under the local-sending approach:

* to the off-tree Link 6 — PIM-DM interprets the care-of source as a
  brand-new sender: network-wide flood, a new source-rooted tree at
  every router, and the old (S,G) state lingering for the 210 s data
  timeout,
* to the on-tree Link 4 — during the movement-detection window the
  stale home source address arrives on an *outgoing* interface of
  Router D's entry, triggering the unwanted assert process.
"""

from repro.analysis import fmt_bytes, render_table, render_tree
from repro.core import LOCAL_MEMBERSHIP, ROUTER_LINKS, PaperScenario, ScenarioConfig

from bench_utils import once, save_report


def run_offtree():
    sc = PaperScenario(ScenarioConfig(seed=11, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    before = sc.metrics.snapshot()
    sc.move("S", "L6", at=40.0)
    sc.run_until(100.0)
    mid = {
        "new_entries": sc.metrics.entries_created(
            source=sc.paper.sender.care_of_address, since=40.0
        ),
        "flood_links": sc.metrics.flood_extent(
            sc.paper.sender.care_of_address, sc.group, since=40.0
        ),
        "new_tree": sc.tree_for_source(sc.paper.sender.care_of_address),
        "old_tree": sc.current_tree(),
        "delta": sc.metrics.snapshot().delta(before),
    }
    # run past the 210 s data timeout: the stale tree must evaporate
    sc.run_until(40.0 + 210.0 + 30.0)
    home = sc.paper.sender.home_address
    mid["old_entries_expired"] = sc.net.tracer.count(
        "pim.state", event="entry-expired", source=str(home)
    )
    mid["old_entries_left"] = sum(
        1
        for r in sc.paper.routers.values()
        if r.pim.get_entry(home, sc.group) is not None
    )
    return sc, mid


def run_ontree():
    sc = PaperScenario(ScenarioConfig(seed=12, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    sc.move("S", "L4", at=40.0)
    sc.run_until(44.0)
    return {
        "asserts": sc.metrics.assert_count(since=40.0),
        "erroneous_sends": sc.net.tracer.count(
            "mobility", event="erroneous-source-send", since=40.0
        ),
    }


def run():
    return run_offtree(), run_ontree()


def test_bench_sender_local(benchmark):
    (sc, off), on = once(benchmark, run)

    report = [
        render_tree(off["new_tree"], "L6", ROUTER_LINKS,
                    title="New source-rooted tree after S moved to Link 6 (CoA source)"),
        "",
        f"new (CoA, G) entries created: {off['new_entries']} (one per router)",
        f"links reached by the re-flood: {off['flood_links']}",
        f"PIM signaling since move: {fmt_bytes(off['delta'].total('pim'))}",
        f"old (S_home, G) entries expired after 210 s: {off['old_entries_expired']}; "
        f"still present: {off['old_entries_left']}",
        "",
        "move to the on-tree Link 4 (erroneous-source window, §4.3.1):",
        f"  datagrams sent with the stale home source: {on['erroneous_sends']}",
        f"  unwanted Assert messages triggered: {on['asserts']}",
    ]
    save_report("sender_local", "\n".join(report))

    assert off["new_entries"] == 5  # all five routers built new state
    assert len(off["flood_links"]) >= 4  # network-wide flood
    assert off["old_entries_expired"] == 5  # stale tree gone after 210 s
    assert off["old_entries_left"] == 0
    assert on["erroneous_sends"] > 0
    assert on["asserts"] >= 5  # the unwanted assert process
