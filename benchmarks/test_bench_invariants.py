"""EXP-I1 — invariant-oracle overhead on a §4.3 comparison run.

The runtime protocol invariant oracles (docs/ROBUSTNESS.md) are
passive trace listeners; arming them must cost < 5% of end-to-end
runtime on a real experiment.  Measured on the §4.3 receiver-mobility
row (the Figure 2 scenario measured through
``repro.core.comparison.receiver_mobility_run``), min of 5 interleaved
rounds with the monitor attached vs not.  The same runs double as a correctness
check: zero violations, and byte-identical result rows either way.
"""

import json
import os
from time import perf_counter

from repro.core import LOCAL_MEMBERSHIP
from repro.core.comparison import receiver_mobility_run
from repro.invariants import ENV_FLAG

from bench_utils import save_report


def _run_row(checked):
    prior = os.environ.pop(ENV_FLAG, None)
    if checked:
        os.environ[ENV_FLAG] = "1"
    try:
        start = perf_counter()
        row = receiver_mobility_run(LOCAL_MEMBERSHIP, seed=0)
        return perf_counter() - start, row
    finally:
        os.environ.pop(ENV_FLAG, None)
        if prior is not None:
            os.environ[ENV_FLAG] = prior


def test_bench_invariant_oracle_overhead():
    """Oracles attached in escalate mode stay within 5% of a bare run."""
    _run_row(checked=False)  # warm-up: imports, allocator, caches
    off_times, on_times = [], []
    row_off = row_on = None
    for _ in range(5):
        t, row_off = _run_row(checked=False)
        off_times.append(t)
        t, row_on = _run_row(checked=True)
        on_times.append(t)
    # escalate mode raised nothing, and the oracles perturbed nothing
    assert json.dumps(row_off, sort_keys=True) == json.dumps(
        row_on, sort_keys=True
    )
    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    save_report(
        "invariant_oracles",
        "\n".join(
            [
                "EXP-I1: invariant-oracle overhead on the §4.3 "
                "receiver-mobility row (fig2 scenario, seed 0)",
                f"oracles off: {off:.3f} s   oracles on: {on:.3f} s   "
                f"overhead {overhead * 100:+.2f}%",
                "violations: 0 (escalate mode — any breach would raise)",
                "result rows byte-identical with checking on and off",
            ]
        ),
    )
    assert overhead < 0.05, f"oracle overhead {overhead * 100:.1f}% >= 5%"
