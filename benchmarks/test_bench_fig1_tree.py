"""EXP-F1 — Figure 1: the initial multicast distribution tree.

Regenerates the figure: flood-and-prune from Sender S on Link 1 with
Receivers 1-3 at home must converge to the tree
Link1 -> A -> Link2 -> (B||C assert-elected) -> Link3 -> D -> Link4,
with Links 5 and 6 off-tree.
"""

from repro.analysis import render_tree
from repro.core import LOCAL_MEMBERSHIP, ROUTER_LINKS, PaperScenario, ScenarioConfig

from bench_utils import once, save_report


def run():
    sc = PaperScenario(ScenarioConfig(seed=1, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    return sc


def test_bench_fig1_tree(benchmark):
    sc = once(benchmark, run)
    tree = sc.current_tree()

    report = [
        render_tree(tree, "L1", ROUTER_LINKS,
                    title="Figure 1: multicast distribution tree for (S on Link 1, G)"),
        "",
        f"per-router forwarding: {tree}",
        f"asserts during convergence: {sc.metrics.assert_count()}",
        f"prunes: {sc.metrics.prune_count()}",
        f"receiver deliveries: "
        + ", ".join(f"{n}={sc.apps[n].unique_count}" for n in ("R1", "R2", "R3")),
        f"bytes on off-tree links: L5={sc.net.stats.link_bytes('L5', 'mcast_data')} "
        f"L6={sc.net.stats.link_bytes('L6', 'mcast_data')}",
    ]
    save_report("fig1_tree", "\n".join(report))

    # Paper shape: the tree spans Links 1-4 and leaves 5/6 dark.
    assert tree["A"] == ["L2"]
    assert sorted(tree["B"] + tree["C"]) == ["L3"]
    assert tree["D"] == ["L4"]
    assert tree["E"] == []
    assert sc.net.stats.link_bytes("L5", "mcast_data") == 0
    assert sc.net.stats.link_bytes("L6", "mcast_data") == 0
    assert all(sc.apps[n].unique_count > 150 for n in ("R1", "R2", "R3"))
