"""EXP-C3 — §4.3 comparison: routing optimality (path stretch).

Local membership routes multicast optimally (stretch 1.0); tunneled
reception detours via the home agent, crossing links twice — the paper's
Figures 2 vs 3 contrast.  Measured for two destination links: the
off-tree Link 6 and the source's own Link 1 (the worst case of Fig. 3).
"""

from repro.analysis import fmt_float, render_table
from repro.core import ALL_APPROACHES
from repro.core.comparison import receiver_mobility_run

from bench_utils import once, save_report


def run():
    rows = []
    for move_link in ("L6", "L1"):
        for approach in ALL_APPROACHES:
            row = receiver_mobility_run(
                approach, seed=8, move_link=move_link, measure_leave=False
            )
            row["move_link"] = move_link
            rows.append(row)
    return rows


def test_bench_cmp_stretch(benchmark):
    rows = once(benchmark, run)
    table = render_table(
        rows,
        [
            ("move_link", "R3 moved to"),
            ("approach", "approach"),
            ("stretch", "stretch (measured/optimal latency)", fmt_float(2)),
            ("duplicates", "duplicate deliveries"),
        ],
        title="Routing optimality per approach (§4.3)",
    )
    save_report("cmp_stretch", table)

    by = {(r["move_link"], r["approach"]): r["stretch"] for r in rows}
    # local receive: optimal on both destinations
    for link in ("L6", "L1"):
        assert abs(by[(link, "local")] - 1.0) < 0.2
        assert abs(by[(link, "ut-mh-ha")] - 1.0) < 0.2
    # tunneled receive: suboptimal, dramatically so on the source link
    assert by[("L6", "bidir")] > 1.1
    assert by[("L6", "ut-ha-mh")] > 1.1
    assert by[("L1", "bidir")] > 3.0  # one hop optimal, ~6 via Router D
    assert by[("L1", "ut-ha-mh")] > 3.0
