"""EXP-S2 regression guard — fluid engine event reduction.

Runs one medium EXP-S2 cell pair (docs/TRAFFIC.md, EXPERIMENTS.md
§EXP-S2) — a depth-2 / fanout-10 hierarchy, 500 receivers, 2%
per-interval mobility — under both traffic engines and gates the
fluid engine's contract:

* data-plane transmission reduction >= 100x (the ISSUE/ROADMAP gate:
  packet-mode data transmissions vs fluid probe transmissions at equal
  simulated traffic),
* mcast byte agreement within the docs/TRAFFIC.md tolerance,
* fluid-mode dispatched events bounded (deterministic — the fluid run
  must stay control-plane sized, not data-plane sized).

Calibration (reference machine): packet 254,572 events / 44,400 data
transmissions in ~7 s; fluid 11,588 events / 111 probe transmissions
in ~0.7 s — 400x data-plane reduction, byte error 1.1e-04.
"""

from time import perf_counter

from repro.core.fluidstudy import fluid_cell

from bench_utils import once, save_report

# committed budgets — deterministic unless noted
DATA_REDUCTION_FLOOR = 100.0
BYTE_REL_ERR_MAX = 0.02
FLUID_EVENTS_BUDGET = 150_000
RECEIVERS = 500

_COMMON = dict(
    model_params={"depth": 2, "fanout": 10},
    receivers=RECEIVERS,
    mobility=0.02,
    seed=0,
    warmup=10.0,
    duration=20.0,
    packet_interval=0.05,
    probe_interval=30.0,
)


def run():
    t0 = perf_counter()
    packet = fluid_cell(traffic_model="packet", **_COMMON)
    t1 = perf_counter()
    fluid = fluid_cell(traffic_model="fluid", **_COMMON)
    t2 = perf_counter()
    return packet, fluid, t1 - t0, t2 - t1


def test_bench_fluid_reduction(benchmark):
    packet, fluid, packet_wall, fluid_wall = once(benchmark, run)

    probe_tx = max(fluid["probe_transmissions"], 1)
    reduction = packet["data_transmissions"] / probe_tx
    base = max(packet["mcast_bytes"], 1)
    byte_err = abs(fluid["mcast_bytes"] - packet["mcast_bytes"]) / base

    report = [
        f"EXP-S2 medium cell: {packet['routers']} routers, "
        f"{RECEIVERS} receivers, mobility 0.02 "
        f"(graph {packet['graph_digest'][:12]})",
        f"packet engine: {packet['events']:,} events, "
        f"{packet['data_transmissions']:,.0f} data transmissions "
        f"in {packet_wall:.1f}s",
        f"fluid engine:  {fluid['events']:,} events, "
        f"{fluid['probe_transmissions']:,} probe transmissions "
        f"in {fluid_wall:.1f}s "
        f"({fluid['traffic']['recomputes']:,} rate recomputations)",
        f"data-plane reduction: {reduction:,.1f}x "
        f"(floor {DATA_REDUCTION_FLOOR:,.0f}x)",
        f"total-event reduction: {packet['events'] / max(fluid['events'], 1):.2f}x",
        f"mcast byte agreement: rel error {byte_err:.2e} "
        f"(max {BYTE_REL_ERR_MAX})",
    ]
    save_report("fluid_reduction", "\n".join(report))

    assert packet["moves"] > 0  # mobility exercised handovers
    assert fluid["moves"] == packet["moves"]  # same mobility schedule
    assert reduction >= DATA_REDUCTION_FLOOR
    assert byte_err <= BYTE_REL_ERR_MAX
    assert fluid["events"] <= FLUID_EVENTS_BUDGET
    assert fluid["events"] < packet["events"]
