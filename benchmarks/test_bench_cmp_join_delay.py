"""EXP-C1 — §4.3 comparison: join delay of a mobile receiver.

Receiver 3 moves to the off-tree Link 6 under every approach, with and
without the paper's unsolicited-Report recommendation.  Expected shape:
tunnel reception and unsolicited local Reports give ~handoff-pipeline
delays; wait-for-query costs O(T_Query) (67.5 s expected with defaults).
"""

from repro.analysis import (
    expected_join_delay_unsolicited,
    expected_join_delay_wait_for_query,
    fmt_seconds,
    render_table,
)
from repro.core import ALL_APPROACHES, LOCAL_MEMBERSHIP, TUNNEL_MH_TO_HA
from repro.core.comparison import receiver_mobility_run
from repro.mipv6 import MobileIpv6Config
from repro.mld import MldConfig

from bench_utils import once, save_report


def run():
    rows = []
    for approach in ALL_APPROACHES:
        row = receiver_mobility_run(approach, seed=6, measure_leave=False)
        row["variant"] = "unsolicited Reports"
        rows.append(row)
    for approach in (LOCAL_MEMBERSHIP, TUNNEL_MH_TO_HA):
        row = receiver_mobility_run(
            approach, seed=6, unsolicited=False, measure_leave=False
        )
        row["variant"] = "wait for Query"
        rows.append(row)
    return rows


def test_bench_cmp_join_delay(benchmark):
    rows = once(benchmark, run)
    model_wait = expected_join_delay_wait_for_query(MldConfig())
    model_unsol = expected_join_delay_unsolicited(MobileIpv6Config())

    table = render_table(
        rows,
        [
            ("approach", "approach"),
            ("variant", "variant"),
            ("join_delay", "join delay", fmt_seconds),
        ],
        title="Join delay, R3 moves Link4->Link6 (§4.3)",
    )
    notes = (
        f"\nanalytic: wait-for-query E = T_Query/2 + T_RespDel/2 = {model_wait:.1f}s; "
        f"unsolicited E = handoff pipeline = {model_unsol:.1f}s"
    )
    save_report("cmp_join_delay", table + notes)

    by = {(r["approach"], r["variant"]): r["join_delay"] for r in rows}
    fast = by[("local", "unsolicited Reports")]
    slow = by[("local", "wait for Query")]
    tunnel = by[("bidir", "unsolicited Reports")]
    # Paper shape: tunnel ~ unsolicited-local << wait-for-query.
    assert fast < 3.0
    assert tunnel < 3.0
    assert slow > 10 * fast
    # wait-for-query lands within one query cycle + MRD of the move
    assert slow <= 125.0 + 10.0 + 3.0
    # every approach eventually rejoins
    assert all(d is not None for d in by.values())
