"""EXP-P2 sharded-kernel gate — 4 regions over the EXP-S1 scenario.

Runs the 1,110-router EXP-S1 scale cell (docs/TOPOLOGIES.md) once on a
single kernel and once on 4 conservatively synchronized shards — one
worker process per region, link-delay lookahead (docs/PERFORMANCE.md,
"Sharded execution") — and gates:

* **determinism** (always): a second 4-shard run reproduces the merged
  trace digest byte for byte, and the per-shard event totals are
  identical;
* **mechanism** (always): >1 barrier round, a finite lookahead bound,
  and boundary links actually crossed;
* **speedup** (only with >= 4 physical cores): the 4-shard run must
  sustain >= 2.5x the single-kernel events/s.  On smaller machines the
  run still executes — measuring the synchronization overhead honestly
  — but the ratio assertion is skipped, mirroring the cpu_count
  fingerprint exemption in ``repro bench --baseline``.

Calibration (4-core reference): single kernel ~2,900 events/s, 4
shards ~8,700 events/s (3.0x) on the 500-receiver / 20 s cell below.
"""

import os
from time import perf_counter

from repro.core.scalestudy import scale_cell

from bench_utils import once, save_report

SHARDS = 4
SPEEDUP_FLOOR = 2.5
MIN_CORES = 4

CELL = dict(
    model_params={"depth": 3, "fanout": 10},
    receivers=500,
    groups=1,
    mobility=0.05,
    seed=0,
    warmup=8.0,
    duration=20.0,
    check_invariants=False,
)


def run():
    started = perf_counter()
    single = scale_cell(**CELL)
    single_wall = perf_counter() - started

    started = perf_counter()
    sharded = scale_cell(shards=SHARDS, shard_executor="process", **CELL)
    sharded_wall = perf_counter() - started
    return single, single_wall, sharded, sharded_wall


def test_bench_shard_exp_p2(benchmark):
    single, single_wall, sharded, sharded_wall = once(benchmark, run)
    single_rate = single["events"] / single_wall if single_wall > 0 else 0.0
    sharded_rate = sharded["events"] / sharded_wall if sharded_wall > 0 else 0.0
    speedup = sharded_rate / single_rate if single_rate > 0 else 0.0
    info = sharded["shards"]
    cores = os.cpu_count() or 1

    # determinism re-run through the in-process reference executor:
    # cheaper than a second worker fleet and a strictly stronger check
    # (cross-executor byte identity, not just run-to-run)
    rerun = scale_cell(shards=SHARDS, shard_executor="inproc", **CELL)

    report = [
        f"EXP-P2: {sharded['routers']} routers, {CELL['receivers']} receivers "
        f"across {SHARDS} shards ({info['boundary_links']} boundary links, "
        f"lookahead {info['lookahead']:g}s, {info['rounds']} barrier rounds)",
        f"single kernel : {single['events']:,} events in {single_wall:.1f}s "
        f"({single_rate:,.0f} events/s)",
        f"{SHARDS} shards      : {sharded['events']:,} events in "
        f"{sharded_wall:.1f}s ({sharded_rate:,.0f} events/s)",
        f"speedup: {speedup:.2f}x on {cores} cores "
        f"(floor {SPEEDUP_FLOOR}x, gated at >= {MIN_CORES} cores)",
        f"merged digest: {info['digest']}",
    ]
    save_report("shard_exp_p2", "\n".join(report))

    # determinism: the re-run reproduces the merged digest byte for byte
    assert rerun["shards"]["digest"] == info["digest"]
    assert rerun["shards"]["per_shard_events"] == info["per_shard_events"]
    assert rerun["events"] == sharded["events"]

    # mechanism: regions really synchronized over boundary channels
    assert info["count"] == SHARDS
    assert info["rounds"] > 1
    assert info["boundary_links"] > 0
    assert info["lookahead"] > 0.0
    assert sum(info["per_shard_events"]) == sharded["events"]

    if cores >= MIN_CORES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"EXP-P2 regression: {speedup:.2f}x < {SPEEDUP_FLOOR}x on "
            f"{cores} cores"
        )
