"""EXP-C4 — §4.3 comparison: system load.

Per-approach load on home agents, mobile hosts, and PIM-DM routers,
plus the §4.3.2 scaling sweeps: HA encapsulation load grows linearly
with the number of mobile hosts, the number of groups, and the traffic
rate — and is zero under local membership.
"""

from repro.analysis import render_table
from repro.core import (
    ALL_APPROACHES,
    render_scaling,
    run_ha_load_vs_groups,
    run_ha_load_vs_mobiles,
    run_ha_load_vs_rate,
)
from repro.core.comparison import receiver_mobility_run

from bench_utils import once, save_report


def run():
    approach_rows = []
    for approach in ALL_APPROACHES:
        row = receiver_mobility_run(approach, seed=9, measure_leave=False)
        approach_rows.append(
            {
                "approach": row["approach"],
                "ha_encapsulations": row["ha_encapsulations"],
                "mn_decapsulations": row["mn_decapsulations"],
                "ha_groups_on_behalf": row["ha_groups_on_behalf"],
            }
        )
    mobiles = run_ha_load_vs_mobiles(counts=(1, 2, 4, 8), measure_window=20.0)
    groups = run_ha_load_vs_groups(counts=(1, 2, 4), measure_window=20.0)
    rate = run_ha_load_vs_rate(packet_intervals=(0.2, 0.1, 0.05), measure_window=20.0)
    return approach_rows, mobiles, groups, rate


def test_bench_cmp_sysload(benchmark):
    approach_rows, mobiles, groups, rate = once(benchmark, run)

    parts = [
        render_table(
            approach_rows,
            ["approach", "ha_encapsulations", "mn_decapsulations", "ha_groups_on_behalf"],
            title="System load per approach (receiver on Link 6, §4.3)",
        ),
        render_scaling(mobiles, "mobiles"),
        render_scaling(groups, "groups"),
        render_scaling(rate, "packets_per_s"),
    ]
    save_report("cmp_sysload", "\n\n".join(parts))

    by = {r["approach"]: r for r in approach_rows}
    # local membership: "no additional system load in home agents" (§4.3.1)
    assert by["local"]["ha_encapsulations"] == 0
    assert by["ut-mh-ha"]["ha_encapsulations"] == 0
    # tunnel reception loads HA and MN per datagram (§4.3.2)
    assert by["bidir"]["ha_encapsulations"] > 100
    assert by["bidir"]["mn_decapsulations"] > 100
    # linear scaling claims
    enc = [r["ha_encapsulations"] for r in mobiles]
    assert enc[1] > 1.8 * enc[0] and enc[3] > 7 * enc[0]
    genc = [r["ha_encapsulations"] for r in groups]
    assert genc[2] > 3.5 * genc[0]
    renc = [r["ha_encapsulations"] for r in rate]
    assert renc[2] > 3.5 * renc[0]
