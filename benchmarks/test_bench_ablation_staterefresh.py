"""EXP-A3 — extension ablation: PIM-DM State Refresh (RFC 3973).

Plain dense mode periodically re-floods pruned branches when prune
state expires; the State Refresh extension replaces those data floods
with small control messages.  Measured on a pruned branch over five
minutes with a 15 s prune-hold time (shortened to make the plain-DM
re-flood visible in a benchmark-sized run).
"""

from repro.analysis import fmt_bytes, render_table
from repro.net import ApplicationData
from repro.pimdm import PimDmConfig

from bench_utils import once, save_report
from topo_helpers import build_line


def run_variant(state_refresh: bool):
    cfg = PimDmConfig(
        prune_hold_time=15.0,
        state_refresh_enabled=state_refresh,
        state_refresh_interval=10.0,
    )
    topo = build_line(2, seed=13, pim_config=cfg)
    sender = topo.host_on(0, 100, "S")
    topo.net.run(until=1.0)
    for k in range(1490):
        topo.net.sim.schedule_at(
            2.0 + 0.2 * k, sender.send_multicast, topo.group,
            ApplicationData(seqno=k),
        )
    topo.net.run(until=300.0)
    mid = topo.links[1].name
    return {
        "state_refresh": state_refresh,
        "refloods": topo.net.tracer.count("pim.state", event="oif-prune-expired"),
        "wasted_data_bytes": topo.net.stats.link_bytes(mid, "mcast_data"),
        "pim_control_bytes": topo.net.stats.link_bytes(mid, "pim"),
    }


def run():
    return [run_variant(False), run_variant(True)]


def test_bench_ablation_staterefresh(benchmark):
    rows = once(benchmark, run)
    table = render_table(
        rows,
        [
            ("state_refresh", "State Refresh"),
            ("refloods", "prune expiries (re-floods)"),
            ("wasted_data_bytes", "data on pruned link", fmt_bytes),
            ("pim_control_bytes", "PIM control on link", fmt_bytes),
        ],
        title="Ablation: State Refresh vs plain dense mode (pruned branch, 300 s)",
    )
    save_report("ablation_staterefresh", table)

    plain, sr = rows
    assert plain["refloods"] >= 2
    assert sr["refloods"] == 0
    # control bytes replace data floods at a fraction of the cost
    assert sr["wasted_data_bytes"] < plain["wasted_data_bytes"] / 3
    assert sr["pim_control_bytes"] < plain["wasted_data_bytes"] / 10
