"""EXP-R resilience benchmark — the repro.faults loss sweep.

Runs the wireless-loss resilience grid (3 loss rates × local vs
bi-directional tunnel) through the campaign engine and records the
resilience table under ``benchmarks/results/faults_resilience.txt``.

Asserts the subsystem's qualitative claim: under burst loss the tunnel
approach (1 s Binding Update retransmission) recovers faster and
delivers more than local membership (10 s MLD unsolicited-Report
cadence), while the zero-loss row is approach-neutral.
"""

from __future__ import annotations

from repro.campaign import CampaignRunner
from repro.core.strategies import BIDIRECTIONAL_TUNNEL, LOCAL_MEMBERSHIP
from repro.faults.experiments import render_fault_table, run_fault_sweep

from bench_utils import once, save_report

LOSS_RATES = (0.0, 0.01, 0.05)
APPROACHES = (LOCAL_MEMBERSHIP, BIDIRECTIONAL_TUNNEL)


def test_bench_faults_loss_sweep(benchmark):
    rows = once(
        benchmark,
        run_fault_sweep,
        loss_rates=LOSS_RATES,
        approaches=APPROACHES,
        seed=0,
        runner=CampaignRunner(jobs=1, master_seed=0),
    )
    assert len(rows) == len(LOSS_RATES) * len(APPROACHES)
    by = {(r["approach"], r["loss_rate"]): r for r in rows}

    # zero loss: no faults fire, recovery is the bare handoff pipeline
    assert by[("local", 0.0)]["faults_fired"] == 0
    assert abs(
        by[("local", 0.0)]["recovery_time"] - by[("bidir", 0.0)]["recovery_time"]
    ) < 0.05

    # the qualitative separation the paper's machinery predicts
    for rate in LOSS_RATES[1:]:
        local, bidir = by[("local", rate)], by[("bidir", rate)]
        assert bidir["recovery_time"] < local["recovery_time"]
        assert bidir["delivery_ratio"] > local["delivery_ratio"]

    save_report("faults_resilience", render_fault_table(rows))
