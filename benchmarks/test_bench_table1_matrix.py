"""EXP-T1 — Table 1: the four approaches matrix.

Verifies each (send, receive) mechanism pair maps to the paper's named
approach and that the wiring delivers datagrams over the advertised
path in the live Figure 1 network (tunneled vs local on each axis).
"""

from repro.core import (
    ALL_APPROACHES,
    PaperScenario,
    ScenarioConfig,
    approach_for,
    render_table1,
)
from repro.mipv6 import DeliveryMode

from bench_utils import once, save_report


def probe(approach):
    """Move R3 (receiver) and S (sender) away; observe the delivery paths."""
    sc = PaperScenario(ScenarioConfig(seed=5, approach=approach))
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.move("S", "L5", at=40.0)
    sc.run_until(75.0)
    recv_tunneled = (
        sc.net.tracer.count("mipv6", node="R3", event="tunnel-mcast-received", since=40.0) > 0
    )
    send_tunneled = (
        sc.net.tracer.count("mipv6", node="S", event="reverse-tunnel-send", since=40.0) > 0
    )
    delivered = sc.apps["R3"].first_delivery_after(50.0) is not None
    return recv_tunneled, send_tunneled, delivered


def run_all():
    return {a.key: probe(a) for a in ALL_APPROACHES}


def test_bench_table1_matrix(benchmark):
    results = once(benchmark, run_all)

    lines = [render_table1(), "", "observed delivery paths (R3 on L6, S on L5):"]
    for approach in ALL_APPROACHES:
        recv_t, send_t, delivered = results[approach.key]
        lines.append(
            f"  {approach.number}. {approach.key:<9} recv={'tunnel' if recv_t else 'local '} "
            f"send={'tunnel' if send_t else 'local '} end-to-end={'ok' if delivered else 'FAIL'}"
        )
    save_report("table1_matrix", "\n".join(lines))

    for approach in ALL_APPROACHES:
        recv_t, send_t, delivered = results[approach.key]
        assert delivered, approach.key
        assert recv_t == (approach.recv_mode is DeliveryMode.HA_TUNNEL), approach.key
        assert send_t == (approach.send_mode is DeliveryMode.HA_TUNNEL), approach.key
    # the matrix lookup covers all four combinations bijectively
    seen = {approach_for(s, r).key for s in DeliveryMode for r in DeliveryMode}
    assert seen == {a.key for a in ALL_APPROACHES}
