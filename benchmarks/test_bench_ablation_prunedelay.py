"""EXP-A2 — ablation: the Prune Delay Time T_PruneDel (default 3 s).

§4.3.1: "The wasted capacity depends mainly on the bit rate of the
sender, the PIM-DM Prune Delay Time T_PruneDel (default 3 s), the
number of links to be pruned, and the mobility rate of the sender."

A mobile sender moves to the off-tree Link 6 under local sending; the
re-flood persists on soon-to-be-pruned links for ~T_PruneDel.  Sweeping
T_PruneDel shows the waste growing with it.
"""

from dataclasses import replace

from repro.analysis import fmt_bytes, fmt_float, render_table
from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.pimdm import PimDmConfig

from bench_utils import once, save_report


def one(prune_delay: float):
    """All receivers leave the group before the move, so every datagram
    the re-flood pushes downstream is waste; the prune-pending window
    (T_PruneDel) plus the Join-override cascade on Link 3 controls how
    long the flood persists."""
    sc = PaperScenario(
        ScenarioConfig(
            seed=30,
            approach=LOCAL_MEMBERSHIP,
            pim=PimDmConfig(prune_delay=prune_delay),
            packet_interval=0.02,  # 50 pkt/s: waste is visible
        )
    )
    sc.converge()
    for name in ("R1", "R2", "R3"):
        sc.paper.host(name).leave_group(sc.group)  # Done -> fast leave
    sc.run_until(38.0)
    before = sc.metrics.snapshot()
    sc.move("S", "L6", at=40.0)
    sc.run_until(70.0)
    delta = sc.metrics.snapshot().delta(before)
    # with no members anywhere, every multicast byte beyond the sender's
    # own link is flood-and-prune convergence waste
    waste = sum(
        delta.bytes_on(l, "mcast_data") for l in ("L1", "L2", "L3", "L4", "L5")
    )
    return {"prune_delay": prune_delay, "wasted_bytes": waste}


def run():
    return [one(pd) for pd in (1.0, 3.0, 6.0, 12.0)]


def test_bench_ablation_prunedelay(benchmark):
    rows = once(benchmark, run)
    table = render_table(
        rows,
        [
            ("prune_delay", "T_PruneDel (s)", fmt_float(0)),
            ("wasted_bytes", "re-flood waste on memberless links", fmt_bytes),
        ],
        title="Ablation: prune delay vs re-flood waste (mobile sender, §4.3.1)",
    )
    save_report("ablation_prunedelay", table)

    wastes = [r["wasted_bytes"] for r in rows]
    assert all(w > 0 for w in wastes), "re-flood must hit memberless links"
    # waste grows with the prune-delay window
    assert wastes[-1] > wastes[0]
    assert wastes == sorted(wastes)
