"""EXP-F5 — Figure 5: the Multicast Group List Sub-Option wire format.

Byte-exact serialization/parse round-trips for the paper's proposed
Binding Update sub-option, including the Sub-Option Len = 16·N rule.
This is a genuine micro-benchmark: pytest-benchmark measures the
serialize+parse cycle.
"""

from repro.mipv6 import (
    BindingUpdateOption,
    MulticastGroupListSubOption,
    parse_sub_options,
)
from repro.net import Address, make_multicast_group

from bench_utils import save_report

GROUPS = [make_multicast_group(k + 1) for k in range(8)]
HOME = Address("2001:db8:4::67")
COA = Address("2001:db8:6::67")


def roundtrip(n_groups: int):
    opt = MulticastGroupListSubOption(GROUPS[:n_groups])
    raw = opt.serialize()
    (parsed,) = parse_sub_options(raw)
    return raw, parsed


def test_bench_fig5_suboption(benchmark):
    raw, parsed = benchmark(roundtrip, 4)

    lines = ["Figure 5: Multicast Group List Sub-Option wire format", ""]
    for n in (0, 1, 2, 4, 8):
        r, p = roundtrip(n)
        lines.append(
            f"N={n}: Sub-Option Type={r[0]}  Sub-Option Len={r[1]} (=16*{n})  "
            f"total {len(r)} bytes  roundtrip={'ok' if p.groups == GROUPS[:n] else 'FAIL'}"
        )
    bu = BindingUpdateOption(
        HOME, COA, 256.0, sequence=1,
        sub_options=(MulticastGroupListSubOption(GROUPS[:3]),),
    )
    lines += [
        "",
        f"extended Binding Update with 3 groups: {bu.size_bytes} bytes on the wire",
        f"  (plain BU {BindingUpdateOption(HOME, COA, 256.0).size_bytes} bytes "
        f"+ sub-option 2+16*3 bytes)",
    ]
    save_report("fig5_suboption", "\n".join(lines))

    assert raw[0] == 3  # sub-option type
    assert raw[1] == 16 * 4  # Sub-Option Len = 16N
    assert parsed.groups == GROUPS[:4]
    parsed_bu = BindingUpdateOption.parse(bu.serialize()[2:], HOME, COA)
    assert parsed_bu.multicast_groups() == GROUPS[:3]
