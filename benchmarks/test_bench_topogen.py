"""EXP-S1 scaling regression guard — 1,000+ routers, 10^4 receivers.

Runs the headline scale cell of the EXP-S1 study (docs/TOPOLOGIES.md,
EXPERIMENTS.md §EXP-S1) on a generated depth-3 / fanout-10 ISP
hierarchy — 1,110 routers, 10,000 mobile receivers, 5% per-interval
mobility — and gates it against committed budgets:

* peak per-(S,G)/membership/binding state entries (deterministic —
  the compact backend must keep the footprint bounded),
* simulated events dispatched (deterministic — guards against
  control-message blowups in the protocol stack),
* events/sec throughput (wall-clock dependent; the floor is set far
  below the ~15k ev/s measured at calibration time so CI jitter
  cannot trip it, while a 3x kernel regression still does).

Calibration (reference machine): 720,743 events in ~47 s (~15,400
events/s), 14,731 state entries, aggregation gain 1.062 over the dict
backend, 457 handovers.
"""

from time import perf_counter

from repro.analysis import render_table
from repro.core.scalestudy import scale_cell

from bench_utils import once, save_report

# committed budgets — deterministic unless noted
ROUTERS_FLOOR = 1_000
RECEIVERS = 10_000
STATE_ENTRY_BUDGET = 20_000
EVENTS_BUDGET = 900_000
EVENTS_PER_SEC_FLOOR = 3_000  # wall-clock dependent; generous CI margin


def run():
    started = perf_counter()
    row = scale_cell(
        model_params={"depth": 3, "fanout": 10},
        receivers=RECEIVERS,
        groups=1,
        mobility=0.05,
        seed=0,
        warmup=10.0,
        duration=30.0,
    )
    wall = perf_counter() - started
    return row, wall


def test_bench_topogen_scale(benchmark):
    row, wall = once(benchmark, run)
    rate = row["events"] / wall if wall > 0 else 0.0

    snap = row["state"]
    rows = [
        {"kind": kind, "entries": count}
        for kind, count in sorted(snap["entries"].items())
    ]
    report = [
        f"EXP-S1 headline cell: {row['routers']} routers, "
        f"{RECEIVERS:,} receivers, mobility 0.05 (graph {row['graph_digest'][:12]})",
        f"events dispatched: {row['events']:,} in {wall:.1f}s "
        f"({rate:,.0f} events/s)",
        f"handovers completed: {row['moves']}",
        "",
        render_table(rows, [("kind", "state kind"), ("entries", "entries")],
                     title="Peak state entries by kind"),
        "",
        f"total state entries: {snap['total_entries']:,} "
        f"(budget {STATE_ENTRY_BUDGET:,})",
        f"state bytes: dict {snap['bytes']['dict']:,} vs compact "
        f"{snap['bytes']['compact']:,} — aggregation gain "
        f"{row['aggregation_gain']:.4f}",
    ]
    save_report("topogen_scale", "\n".join(report))

    assert row["routers"] >= ROUTERS_FLOOR
    assert row["moves"] > 0  # mobility actually exercised handovers
    assert snap["total_entries"] <= STATE_ENTRY_BUDGET
    assert row["events"] <= EVENTS_BUDGET
    assert row["aggregation_gain"] >= 1.0
    assert rate >= EVENTS_PER_SEC_FLOOR
