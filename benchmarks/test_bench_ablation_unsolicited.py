"""EXP-A1 — ablation: unsolicited Reports after a move (§4.3.1 advice).

The paper recommends that mobile hosts send unsolicited Reports after
attaching to a new link.  This ablation toggles exactly that knob under
the local-membership approach and quantifies the join-delay gain and
the signaling cost of the extra Reports.
"""

from repro.analysis import fmt_bytes, fmt_seconds, render_table
from repro.core import LOCAL_MEMBERSHIP
from repro.core.comparison import receiver_mobility_run

from bench_utils import once, save_report


def run():
    rows = []
    for seed in (20, 21, 22):
        for unsolicited in (True, False):
            row = receiver_mobility_run(
                LOCAL_MEMBERSHIP, seed=seed, unsolicited=unsolicited,
                measure_leave=False,
            )
            rows.append(
                {
                    "seed": seed,
                    "unsolicited": unsolicited,
                    "join_delay": row["join_delay"],
                    "mld_bytes": row["mld_bytes"],
                }
            )
    return rows


def test_bench_ablation_unsolicited(benchmark):
    rows = once(benchmark, run)
    table = render_table(
        rows,
        [
            ("seed", "seed"),
            ("unsolicited", "unsolicited Reports"),
            ("join_delay", "join delay", fmt_seconds),
            ("mld_bytes", "MLD bytes around move", fmt_bytes),
        ],
        title="Ablation: unsolicited Reports on move (local membership)",
    )
    on = [r for r in rows if r["unsolicited"]]
    off = [r for r in rows if not r["unsolicited"]]
    mean_on = sum(r["join_delay"] for r in on) / len(on)
    mean_off = sum(r["join_delay"] for r in off) / len(off)
    notes = f"\nmean join delay: {mean_on:.2f}s (on) vs {mean_off:.2f}s (off)"
    save_report("ablation_unsolicited", table + notes)

    # the recommendation wins by an order of magnitude
    assert mean_on < 3.0
    assert mean_off > 10 * mean_on
    # and costs at most a few extra Reports
    extra_mld = max(r["mld_bytes"] for r in on) - min(r["mld_bytes"] for r in off)
    assert extra_mld < 2000
