"""EXP-C2 — §4.3 comparison: bandwidth consumption.

Measures the three §4.3.1 bandwidth components per approach:

* leave-delay waste on the abandoned link (all approaches — MLD cannot
  see a host leave),
* tunnel overhead per datagram (tunnel approaches only),
* re-flood traffic onto off-tree links when a local-sending mobile
  moves (scales with source bit rate, paper §4.3.1),

plus the bit-rate scaling of the waste.
"""

from repro.analysis import fmt_bytes, fmt_seconds, render_table
from repro.core import ALL_APPROACHES, LOCAL_MEMBERSHIP
from repro.core.comparison import receiver_mobility_run, sender_mobility_run
from repro.mld import MldConfig

# shorter MLD cycle keeps the leave-delay horizon benchmark-friendly
MLD = MldConfig(query_interval=20.0, query_response_interval=5.0,
                startup_query_interval=5.0)

from bench_utils import once, save_report


def run():
    receiver_rows = [
        receiver_mobility_run(a, seed=7, mld=MLD, measure_leave=True)
        for a in ALL_APPROACHES
    ]
    sender_rows = [
        sender_mobility_run(a, seed=7, mld=MLD, run_until=80.0)
        for a in ALL_APPROACHES
    ]
    # §4.3.1: "the wasted capacity depends mainly on the bit rate of the
    # sender" — sweep the CBR rate for the local approach.
    rate_rows = []
    for interval in (0.2, 0.1, 0.05):
        row = receiver_mobility_run(
            LOCAL_MEMBERSHIP, seed=7, mld=MLD, measure_leave=True,
            packet_interval=interval,
        )
        rate_rows.append(
            {
                "packets_per_s": round(1 / interval, 1),
                "wasted_bytes_old_link": row["wasted_bytes_old_link"],
                "leave_delay": row["leave_delay"],
            }
        )
    return receiver_rows, sender_rows, rate_rows


def test_bench_cmp_bandwidth(benchmark):
    receiver_rows, sender_rows, rate_rows = once(benchmark, run)

    parts = [
        render_table(
            receiver_rows,
            [
                ("approach", "approach"),
                ("leave_delay", "leave delay", fmt_seconds),
                ("wasted_bytes_old_link", "wasted on old link", fmt_bytes),
                ("tunnel_overhead", "tunnel overhead", fmt_bytes),
            ],
            title=f"Receiver move bandwidth (T_MLI={MLD.multicast_listener_interval:.0f}s)",
        ),
        render_table(
            sender_rows,
            [
                ("approach", "approach"),
                ("new_sg_entries", "new (S,G)"),
                ("tunnel_overhead", "tunnel overhead", fmt_bytes),
                ("pim_bytes", "PIM signaling", fmt_bytes),
            ],
            title="Sender move bandwidth",
        ),
        render_table(
            rate_rows,
            [
                ("packets_per_s", "source pkt/s"),
                ("wasted_bytes_old_link", "wasted on old link", fmt_bytes),
                ("leave_delay", "leave delay", fmt_seconds),
            ],
            title="Leave-delay waste scales with source bit rate (§4.3.1)",
        ),
    ]
    save_report("cmp_bandwidth", "\n\n".join(parts))

    by_r = {r["approach"]: r for r in receiver_rows}
    by_s = {r["approach"]: r for r in sender_rows}
    # every approach wastes bandwidth on the old link until MLD notices
    for row in receiver_rows:
        assert row["wasted_bytes_old_link"] > 10_000, row["approach"]
    # tunnel overhead only in tunnel-receive approaches
    assert by_r["local"]["tunnel_overhead"] == 0
    assert by_r["ut-mh-ha"]["tunnel_overhead"] == 0
    assert by_r["bidir"]["tunnel_overhead"] > 0
    assert by_r["ut-ha-mh"]["tunnel_overhead"] > 0
    # tunnel-send approaches pay overhead; local-send rebuilds the tree
    assert by_s["bidir"]["tunnel_overhead"] > 0
    assert by_s["local"]["new_sg_entries"] == 5
    # waste grows monotonically with the source rate
    wastes = [r["wasted_bytes_old_link"] for r in rate_rows]
    assert wastes[0] < wastes[1] < wastes[2]
