"""EXP-C5 — §4.3 comparison: protocol (signaling) overhead.

Signaling bytes by protocol around a receiver move: extended Binding
Updates (larger per the Figure 5 sub-option), MLD Reports/Queries, and
PIM Graft/Prune/Join traffic, per approach.
"""

from repro.analysis import fmt_bytes, render_table
from repro.core import ALL_APPROACHES
from repro.core.comparison import receiver_mobility_run
from repro.mipv6 import BindingUpdateOption, MulticastGroupListSubOption
from repro.net import Address, make_multicast_group

from bench_utils import once, save_report


def run():
    return [
        receiver_mobility_run(a, seed=10, measure_leave=False)
        for a in ALL_APPROACHES
    ]


def test_bench_cmp_overhead(benchmark):
    rows = once(benchmark, run)

    home, coa = Address("2001:db8:4::67"), Address("2001:db8:6::67")
    plain_bu = BindingUpdateOption(home, coa, 256.0).size_bytes
    ext_bu = BindingUpdateOption(
        home, coa, 256.0,
        sub_options=(MulticastGroupListSubOption([make_multicast_group(1)]),),
    ).size_bytes

    table = render_table(
        rows,
        [
            ("approach", "approach"),
            ("mipv6_bytes", "MIPv6 signaling", fmt_bytes),
            ("mld_bytes", "MLD signaling", fmt_bytes),
            ("pim_bytes", "PIM signaling", fmt_bytes),
        ],
        title="Signaling bytes in the 30 s around a receiver move (§4.3)",
    )
    notes = (
        f"\nextended BU (1 group) = {ext_bu}B vs plain BU = {plain_bu}B "
        f"(+{ext_bu - plain_bu}B for the Figure 5 sub-option)"
    )
    save_report("cmp_overhead", table + notes)

    by = {r["approach"]: r for r in rows}
    # every approach pays MIPv6 signaling (BU/BA after the move)
    for row in rows:
        assert row["mipv6_bytes"] > 0, row["approach"]
    # tunnel-receive approaches carry the group list -> more MIPv6 bytes
    assert by["bidir"]["mipv6_bytes"] > by["local"]["mipv6_bytes"]
    # local-receive approaches re-announce membership via MLD on the
    # foreign link; tunnel-receive stays silent there
    assert by["local"]["mld_bytes"] >= by["bidir"]["mld_bytes"]
    assert ext_bu == plain_bu + 2 + 16
