"""EXP-O1 — §4.4: MLD timer optimization sweep.

Sweeps the Query Interval T_Query (bounded below by T_RespDel = 10 s,
footnote 5) and regenerates the paper's trade-off: join and leave
delays fall roughly linearly with T_Query while the extra Query/Report
signaling stays tiny compared with the leave-delay bandwidth saving.
"""

from repro.core import run_timer_sweep
from repro.core.timer_optimization import render_sweep

from bench_utils import once, save_report

INTERVALS = (10.0, 25.0, 60.0, 125.0)


def run():
    return run_timer_sweep(query_intervals=INTERVALS, seeds=(0, 1, 2))


def test_bench_timer_sweep(benchmark):
    points = once(benchmark, run)
    save_report("timer_sweep", render_sweep(points))

    joins = [p.mean_join_delay for p in points]
    leaves = [p.mean_leave_delay for p in points]
    wastes = [p.mean_wasted_bytes for p in points]
    rates = [p.mean_mld_bytes_per_s for p in points]

    # §4.4 shape: smaller T_Query -> smaller join delay, leave delay,
    # and wasted bandwidth; larger (but tiny) signaling rate.
    assert joins == sorted(joins)
    assert leaves == sorted(leaves)
    assert wastes == sorted(wastes)
    assert rates == sorted(rates, reverse=True)

    # leave delay bounded by T_MLI at every point
    for p in points:
        for leave in p.leave_delays:
            assert leave is not None and leave <= p.t_mli + 1.0
    # "the bandwidth cost for this tuning step is small, compared with
    # the bandwidth saving due to a lower leave delay"
    extra_cost_rate = rates[0] - rates[-1]  # B/s, T_Query 10 vs 125
    saving_per_move = wastes[-1] - wastes[0]  # B saved per receiver move
    assert saving_per_move > 60 * extra_cost_rate
    # sim within a factor ~2 of the closed-form expectations
    for p in points:
        assert p.mean_join_delay < 2.2 * p.analytic_join + 5.0
        assert p.mean_leave_delay < 1.6 * p.analytic_leave + 10.0
