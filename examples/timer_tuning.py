#!/usr/bin/env python3
"""MLD timer tuning for mobile receivers (paper Section 4.4).

Sweeps the MLD Query Interval and shows the trade-off the paper
recommends administrators evaluate: join/leave delay (and the wasted
bandwidth behind the leave delay) against extra Query/Report traffic.
Prints the sweep table and a tuning recommendation for a given target
join delay.

Run:  python examples/timer_tuning.py        (~15 s)
"""

from repro.analysis import expected_join_delay_wait_for_query
from repro.core import run_timer_sweep
from repro.core.timer_optimization import render_sweep
from repro.mld import MldConfig


def recommend(target_join_delay: float) -> float:
    """Largest standard T_Query meeting the target (cheapest signaling
    that still satisfies the delay goal; footnote 5 sets the floor)."""
    floor = MldConfig().query_response_interval  # T_Query >= T_RespDel
    candidates = [125.0, 60.0, 30.0, 20.0, 15.0, 10.0]
    for qi in candidates:
        if qi < floor:
            continue
        cfg = MldConfig().with_query_interval(qi)
        if expected_join_delay_wait_for_query(cfg) <= target_join_delay:
            return qi
    return floor


def main() -> None:
    print("Sweeping the MLD Query Interval (3 seeds per point)...\n")
    points = run_timer_sweep(query_intervals=(10.0, 25.0, 60.0, 125.0),
                             seeds=(0, 1, 2))
    print(render_sweep(points))

    fast, slow = points[0], points[-1]
    saving = slow.mean_wasted_bytes - fast.mean_wasted_bytes
    cost = fast.mean_mld_bytes_per_s - slow.mean_mld_bytes_per_s
    print(
        f"\nT_Query 125s -> 10s: join delay {slow.mean_join_delay:.1f}s -> "
        f"{fast.mean_join_delay:.1f}s, leave delay {slow.mean_leave_delay:.1f}s -> "
        f"{fast.mean_leave_delay:.1f}s"
    )
    print(
        f"cost: +{cost:.1f} B/s of Queries/Reports; saving: "
        f"{saving / 1000:.0f} kB of wasted multicast per receiver move"
    )
    print("==> the paper's §4.4 conclusion: the tuning cost is small "
          "compared with the saving")

    for target in (10.0, 20.0, 40.0):
        print(f"target mean join delay <= {target:.0f}s  ->  "
              f"T_Query = {recommend(target):.0f}s")


if __name__ == "__main__":
    main()
