#!/usr/bin/env python3
"""Adaptive strategy selection — acting on the paper's conclusion.

Section 5: local membership "is not a good solution for highly mobile
hosts", while the bi-directional tunnel "is interesting for highly
mobile hosts".  No single approach wins, so this example attaches an
AdaptiveStrategyController to Receiver 3: while it sits still it uses
local membership (optimal routing, no HA load); when it starts
ping-ponging between links the controller switches it to the home-agent
tunnel, and back again once it settles.

Also demonstrates the handoff timeline and bandwidth time-series tools.

Run:  python examples/adaptive_strategy.py
"""

from repro.analysis import (
    BandwidthRecorder,
    handoff_timeline,
    render_series,
    render_timeline,
)
from repro.core import LOCAL_MEMBERSHIP, PaperScenario, ScenarioConfig
from repro.core.adaptive import AdaptiveStrategyController


def main() -> None:
    sc = PaperScenario(ScenarioConfig(seed=9, approach=LOCAL_MEMBERSHIP))
    recorder = BandwidthRecorder(sc.net, period=2.0)
    recorder.start()
    sc.converge()

    r3 = sc.paper.host("R3")
    controller = AdaptiveStrategyController(
        r3, window=60.0, high_rate=3.0, low_rate=1.0, check_interval=5.0
    )
    controller.start()

    # phase 1: sedentary — one move, stays local
    sc.move("R3", "L6", at=40.0)
    sc.run_until(120.0)
    print(f"t=120  mode={r3.recv_mode.value:<10} switches={controller.switches} "
          f"(one move in 80 s: stays local)")

    # phase 2: highly mobile — ping-pong every 10 s
    for k, link in enumerate(["L5", "L6", "L5", "L6", "L5"]):
        sc.move("R3", link, at=130.0 + 10.0 * k)
    sc.run_until(200.0)
    print(f"t=200  mode={r3.recv_mode.value:<10} switches={controller.switches} "
          f"(5 moves in 50 s: switched to the HA tunnel)")

    # phase 3: settles down — controller reverts to local membership
    sc.run_until(320.0)
    print(f"t=320  mode={r3.recv_mode.value:<10} switches={controller.switches} "
          f"(quiet again: back to local membership)")

    print("\nLast handoff, step by step:")
    events = handoff_timeline(sc.net, "R3", since=165.0, until=185.0)
    print(render_timeline(events))

    print("\nMulticast data on Link 6 over the whole run:")
    print(render_series(
        recorder.rate_series(link="L6", category="mcast_data"), label="L6"
    ))
    print("\nHome-agent (Router D) tunnel activity:")
    print(render_series(
        recorder.rate_series(category="tunnel_overhead"), label="tunnel overhead"
    ))


if __name__ == "__main__":
    main()
