#!/usr/bin/env python3
"""A roaming audio/video conference — the paper's motivating workload.

"Demand for multimedia group communication, audio and video streaming
... is rapidly increasing" (paper §1).  This example puts a 256 kbit/s
stream on the Figure 1 network and lets three extra mobile listeners
roam randomly across all six links for ten simulated minutes, once per
delivery approach.  It reports per-approach delivery ratio, duplicate
load, mean latency, and home-agent encapsulation load — the engineering
trade-off the paper's comparison is about.

Run:  python examples/roaming_conference.py        (~30 s)
"""

from repro.analysis import fmt_seconds, render_table
from repro.core import ALL_APPROACHES, PaperScenario, ScenarioConfig
from repro.mobility import RandomWaypointMobility
from repro.workloads import ReceiverApp


def run_approach(approach, seed=7, duration=600.0):
    sc = PaperScenario(
        ScenarioConfig(seed=seed, approach=approach, packet_interval=0.125,
                       payload_bytes=4000)  # 256 kbit/s stream
    )
    listeners = []
    for k in range(3):
        host = sc.paper.add_mobile_host(
            f"U{k}", "L4", host_id=130 + k,
            recv_mode=approach.recv_mode, send_mode=approach.send_mode,
        )
        listeners.append((host, ReceiverApp(host)))
    sc.converge()
    links = [sc.paper.link(f"L{i}") for i in range(1, 7)]
    models = []
    for host, _app in listeners:
        host.join_group(sc.group)
        model = RandomWaypointMobility(host, links, min_dwell=40.0, max_dwell=120.0)
        model.start()
        models.append(model)
    sc.run_until(sc.now + duration)

    sent = sc.source.sent
    rows = []
    for (host, app), model in zip(listeners, models):
        rows.append(
            {
                "listener": host.name,
                "moves": model.moves_done,
                "delivered_pct": 100.0 * app.unique_count / sent,
                "duplicates": app.duplicate_count,
                "mean_latency": app.mean_latency() or 0.0,
            }
        )
    ha_encap = sum(
        r.load["encapsulations"] for r in sc.paper.routers.values()
    )
    return rows, ha_encap


def main() -> None:
    print("10-minute 256 kbit/s conference, 3 listeners roaming all links\n")
    for approach in ALL_APPROACHES:
        rows, ha_encap = run_approach(approach)
        print(render_table(
            rows,
            [
                ("listener", "listener"),
                ("moves", "moves"),
                ("delivered_pct", "delivered %", lambda v: f"{v:.1f}"),
                ("duplicates", "dups"),
                ("mean_latency", "mean latency", fmt_seconds),
            ],
            title=f"{approach.number}. {approach.title}",
        ))
        print(f"  total home-agent encapsulations: {ha_encap}\n")


if __name__ == "__main__":
    main()
