#!/usr/bin/env python3
"""Quickstart: multicast to a mobile receiver in 60 lines.

Builds a tiny custom network (not the paper topology): two PIM-DM
routers in a line, a static multicast source, and one Mobile IPv6
receiver that roams to a foreign link mid-stream.  Shows the public
API: Network, HomeAgent, MobileNode, CbrSource, ReceiverApp.

Run:  python examples/quickstart.py
"""

from repro.mipv6 import HomeAgent, MobileNode
from repro.net import Host, Network, make_multicast_group
from repro.workloads import CbrSource, ReceiverApp


def main() -> None:
    net = Network(seed=42)

    # Links: home -- (HA router) -- backbone -- (router) -- foreign
    home = net.add_link("home", "2001:db8:1::/64")
    backbone = net.add_link("backbone", "2001:db8:2::/64")
    foreign = net.add_link("foreign", "2001:db8:3::/64")

    ha = HomeAgent(net.sim, "HA", tracer=net.tracer, rng=net.rng)
    ha.attach_to(home, home.prefix.address_for_host(1))
    ha.attach_to(backbone, backbone.prefix.address_for_host(1))
    r2 = HomeAgent(net.sim, "R2", tracer=net.tracer, rng=net.rng)
    r2.attach_to(backbone, backbone.prefix.address_for_host(2))
    r2.attach_to(foreign, foreign.prefix.address_for_host(2))
    for router in (ha, r2):
        net.register_node(router)
        net.on_start(router.start)

    source_host = Host(net.sim, "SRC", tracer=net.tracer, rng=net.rng)
    source_host.attach_to(home, home.prefix.address_for_host(100))
    net.register_node(source_host)

    mobile = MobileNode(
        net.sim, "MN",
        tracer=net.tracer, rng=net.rng,
        home_link=home,
        home_agent_address=ha.address_on(home),
        host_id=101,
    )
    net.register_node(mobile)

    group = make_multicast_group(1)
    app = ReceiverApp(mobile)
    mobile.join_group(group)

    source = CbrSource(source_host, group, packet_interval=0.5)
    source.start(at=5.0)

    net.run(until=30.0)
    at_home = app.unique_count
    print(f"t=30s  at home:        {at_home} datagrams received")

    mobile.move_to(foreign)  # roam; MLD re-joins on the foreign link
    net.run(until=60.0)
    print(f"t=60s  after roaming:  {app.unique_count} datagrams received")
    print(f"join delay after the move: {app.join_delay(30.0):.2f}s")
    print(f"care-of address: {mobile.care_of_address}")

    assert app.unique_count > at_home, "the mobile stopped receiving!"
    print("OK: multicast followed the mobile host to the foreign link")


if __name__ == "__main__":
    main()
