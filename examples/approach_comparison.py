#!/usr/bin/env python3
"""The paper's Section 4.3 comparison, quantified.

Runs all four multicast delivery approaches (Table 1) through the
receiver- and sender-mobility scenarios on the Figure 1 network and
prints the measured comparison tables plus the check of every
qualitative claim the paper makes.

Run:  python examples/approach_comparison.py        (~20 s)
"""

from repro.core import render_table1, run_full_comparison


def main() -> None:
    print("The four approaches (Table 1):\n")
    print(render_table1())
    print("\nRunning the quantitative comparison on the Figure 1 network...\n")
    report = run_full_comparison(seed=0)
    print(report.render())
    verdict = "hold" if report.all_claims_hold else "DO NOT hold"
    print(f"\n==> all of the paper's qualitative claims {verdict} in simulation")


if __name__ == "__main__":
    main()
