#!/usr/bin/env python3
"""Regenerate the paper's Figures 1-4 as ASCII trees.

Runs the four scenarios of Section 4.2 on the Figure 1 network and
prints the resulting distribution trees and tunnels, annotated with the
measured delays the paper discusses qualitatively.

Run:  python examples/paper_figures.py
"""

from repro.analysis import fmt_seconds, render_figure
from repro.core import (
    BIDIRECTIONAL_TUNNEL,
    LOCAL_MEMBERSHIP,
    ROUTER_LINKS,
    PaperScenario,
    ScenarioConfig,
)


def figure1() -> None:
    sc = PaperScenario(ScenarioConfig(seed=1, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        title="Figure 1 — initial tree for (Sender S on Link 1, Group G)",
    ))
    print(f"  asserts during convergence: {sc.metrics.assert_count()}"
          f" (Routers B and C electing the Link-3 forwarder)\n")


def figure2() -> None:
    sc = PaperScenario(ScenarioConfig(seed=2, approach=LOCAL_MEMBERSHIP))
    sc.converge()
    sc.move("R3", "L6", at=40.0)
    sc.run_until(80.0)
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        title="Figure 2 — R3 moved Link4->Link6, local membership",
    ))
    print(f"  join delay: {fmt_seconds(sc.join_delay('R3', 40.0))}"
          f"  (Link 4 still served until the MLD timer expires, <=260s)\n")


def figure3() -> None:
    sc = PaperScenario(ScenarioConfig(seed=3, approach=BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("R3", "L1", at=40.0)
    sc.run_until(80.0)
    r3 = sc.paper.host("R3")
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        tunnels=[("Router D (HA of R3)", f"R3 @ {r3.care_of_address}",
                  "multicast datagrams, HA->MH")],
        title="Figure 3 — R3 moved Link4->Link1, membership via home agent",
    ))
    d = sc.paper.router("D")
    print(f"  datagrams tunneled by Router D: {d.tunneled_to_mobiles}"
          f"  (each crosses Links 3,2,1 twice)\n")


def figure4() -> None:
    sc = PaperScenario(ScenarioConfig(seed=4, approach=BIDIRECTIONAL_TUNNEL))
    sc.converge()
    sc.move("S", "L6", at=40.0)
    sc.run_until(90.0)
    s = sc.paper.sender
    print(render_figure(
        sc.current_tree(), "L1", ROUTER_LINKS,
        tunnels=[(f"S @ {s.care_of_address} (Link 6)", "Router A (HA of S)",
                  "multicast datagrams, MH->HA")],
        title="Figure 4 — S moved Link1->Link6, sending via home agent",
    ))
    a = sc.paper.router("A")
    print(f"  reverse-tunneled datagrams: {a.reverse_tunneled}"
          f"  (tree unchanged — no re-flood, no new (S,G) state)\n")


if __name__ == "__main__":
    figure1()
    figure2()
    figure3()
    figure4()
